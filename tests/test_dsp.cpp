// Unit tests for ns::dsp — FFT, vector operations, peak detection,
// spectrogram.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "netscatter/dsp/fft.hpp"
#include "netscatter/dsp/peak.hpp"
#include "netscatter/dsp/spectrogram.hpp"
#include "netscatter/dsp/vector_ops.hpp"
#include "netscatter/util/error.hpp"
#include "netscatter/util/rng.hpp"

namespace {

using namespace ns::dsp;

cvec make_tone(std::size_t n, double cycles, double amplitude = 1.0) {
    cvec tone(n);
    for (std::size_t i = 0; i < n; ++i) {
        tone[i] = std::polar(amplitude, 2.0 * std::numbers::pi * cycles *
                                            static_cast<double>(i) /
                                            static_cast<double>(n));
    }
    return tone;
}

cvec random_vector(std::size_t n, ns::util::rng& gen) {
    cvec v(n);
    for (auto& x : v) x = cplx{gen.gaussian(), gen.gaussian()};
    return v;
}

// ---------------------------------------------------------------- fft --

TEST(fft, power_of_two_helpers) {
    EXPECT_TRUE(is_power_of_two(1));
    EXPECT_TRUE(is_power_of_two(512));
    EXPECT_FALSE(is_power_of_two(0));
    EXPECT_FALSE(is_power_of_two(3));
    EXPECT_FALSE(is_power_of_two(514));
    EXPECT_EQ(next_power_of_two(1), 1u);
    EXPECT_EQ(next_power_of_two(5), 8u);
    EXPECT_EQ(next_power_of_two(512), 512u);
    EXPECT_EQ(next_power_of_two(513), 1024u);
}

TEST(fft, rejects_non_power_of_two) {
    cvec data(12, cplx{1.0, 0.0});
    EXPECT_THROW(fft_inplace(data), ns::util::invalid_argument);
}

TEST(fft, impulse_has_flat_spectrum) {
    cvec data(64, cplx{0.0, 0.0});
    data[0] = cplx{1.0, 0.0};
    const cvec spectrum = fft(data);
    for (const auto& bin : spectrum) {
        EXPECT_NEAR(std::abs(bin), 1.0, 1e-12);
    }
}

TEST(fft, dc_concentrates_in_bin_zero) {
    cvec data(64, cplx{1.0, 0.0});
    const cvec spectrum = fft(data);
    EXPECT_NEAR(std::abs(spectrum[0]), 64.0, 1e-9);
    for (std::size_t i = 1; i < spectrum.size(); ++i) {
        EXPECT_NEAR(std::abs(spectrum[i]), 0.0, 1e-9);
    }
}

TEST(fft, tone_lands_in_expected_bin) {
    const std::size_t n = 256;
    for (double cycles : {1.0, 17.0, 100.0, 255.0}) {
        const cvec spectrum = fft(make_tone(n, cycles));
        const std::vector<double> power = power_spectrum(spectrum);
        EXPECT_EQ(argmax(power), static_cast<std::size_t>(cycles)) << cycles;
        EXPECT_NEAR(std::abs(spectrum[static_cast<std::size_t>(cycles)]),
                    static_cast<double>(n), 1e-8);
    }
}

TEST(fft, linearity) {
    ns::util::rng gen(1);
    const cvec a = random_vector(128, gen);
    const cvec b = random_vector(128, gen);
    cvec sum(128);
    for (std::size_t i = 0; i < 128; ++i) sum[i] = a[i] + 2.0 * b[i];
    const cvec fa = fft(a);
    const cvec fb = fft(b);
    const cvec fsum = fft(sum);
    for (std::size_t i = 0; i < 128; ++i) {
        EXPECT_NEAR(std::abs(fsum[i] - (fa[i] + 2.0 * fb[i])), 0.0, 1e-9);
    }
}

TEST(fft, inverse_recovers_signal) {
    ns::util::rng gen(2);
    const cvec original = random_vector(512, gen);
    const cvec roundtrip = ifft(fft(original));
    for (std::size_t i = 0; i < original.size(); ++i) {
        EXPECT_NEAR(std::abs(roundtrip[i] - original[i]), 0.0, 1e-9);
    }
}

TEST(fft, parseval_energy_conservation) {
    ns::util::rng gen(3);
    const cvec signal = random_vector(1024, gen);
    const cvec spectrum = fft(signal);
    const double time_energy = energy(signal);
    const double freq_energy = energy(spectrum) / 1024.0;
    EXPECT_NEAR(freq_energy / time_energy, 1.0, 1e-10);
}

TEST(fft, zero_padding_interpolates_spectrum) {
    // A tone halfway between bins splits energy when unpadded; padding
    // reveals the true fractional location.
    const std::size_t n = 128;
    const cvec tone = make_tone(n, 10.5);
    const cvec padded = fft_zero_padded(tone, n * 8);
    const std::vector<double> power = power_spectrum(padded);
    const std::size_t peak_bin = argmax(power);
    EXPECT_NEAR(static_cast<double>(peak_bin) / 8.0, 10.5, 0.1);
}

TEST(fft, zero_padding_validates_arguments) {
    cvec data(16, cplx{1.0, 0.0});
    EXPECT_THROW(fft_zero_padded(data, 8), ns::util::invalid_argument);
    EXPECT_THROW(fft_zero_padded(data, 24), ns::util::invalid_argument);
}

TEST(fft, fftshift_rotates_halves) {
    cvec spectrum = {cplx{0, 0}, cplx{1, 0}, cplx{2, 0}, cplx{3, 0}};
    const cvec shifted = fftshift(spectrum);
    EXPECT_DOUBLE_EQ(shifted[0].real(), 2.0);
    EXPECT_DOUBLE_EQ(shifted[1].real(), 3.0);
    EXPECT_DOUBLE_EQ(shifted[2].real(), 0.0);
    EXPECT_DOUBLE_EQ(shifted[3].real(), 1.0);
}

TEST(fft, magnitude_and_power_consistent) {
    ns::util::rng gen(4);
    const cvec spectrum = random_vector(64, gen);
    const auto magnitude = magnitude_spectrum(spectrum);
    const auto power = power_spectrum(spectrum);
    for (std::size_t i = 0; i < 64; ++i) {
        EXPECT_NEAR(magnitude[i] * magnitude[i], power[i], 1e-9);
    }
}

// --------------------------------------------------------- vector ops --

TEST(vector_ops, multiply_elementwise) {
    const cvec a = {cplx{1, 0}, cplx{0, 1}};
    const cvec b = {cplx{2, 0}, cplx{0, 1}};
    const cvec product = multiply(a, b);
    EXPECT_NEAR(std::abs(product[0] - cplx{2, 0}), 0.0, 1e-12);
    EXPECT_NEAR(std::abs(product[1] - cplx{-1, 0}), 0.0, 1e-12);
}

TEST(vector_ops, multiply_conj_gives_unit_for_same_signal) {
    ns::util::rng gen(5);
    cvec a(32);
    for (auto& x : a) x = std::polar(1.0, gen.uniform(0.0, 6.28));
    const cvec product = multiply_conj(a, a);
    for (const auto& x : product) {
        EXPECT_NEAR(x.real(), 1.0, 1e-12);
        EXPECT_NEAR(x.imag(), 0.0, 1e-12);
    }
}

TEST(vector_ops, multiply_length_mismatch_throws) {
    EXPECT_THROW(multiply(cvec(3), cvec(4)), ns::util::invalid_argument);
}

TEST(vector_ops, accumulate_adds_in_place) {
    cvec a(4, cplx{1.0, 0.0});
    const cvec b(4, cplx{0.0, 2.0});
    accumulate(a, b);
    for (const auto& x : a) {
        EXPECT_DOUBLE_EQ(x.real(), 1.0);
        EXPECT_DOUBLE_EQ(x.imag(), 2.0);
    }
}

TEST(vector_ops, accumulate_at_offset_and_truncation) {
    cvec a(4, cplx{0.0, 0.0});
    const cvec b(3, cplx{1.0, 0.0});
    accumulate_at(a, b, 2);  // last element of b falls off the end
    EXPECT_DOUBLE_EQ(a[0].real(), 0.0);
    EXPECT_DOUBLE_EQ(a[1].real(), 0.0);
    EXPECT_DOUBLE_EQ(a[2].real(), 1.0);
    EXPECT_DOUBLE_EQ(a[3].real(), 1.0);
    accumulate_at(a, b, 10);  // entirely out of range: no-op
    EXPECT_DOUBLE_EQ(a[3].real(), 1.0);
}

TEST(vector_ops, scale_real_and_complex) {
    cvec a(2, cplx{1.0, 1.0});
    scale(a, 2.0);
    EXPECT_DOUBLE_EQ(a[0].real(), 2.0);
    scale(a, cplx{0.0, 1.0});  // rotate by 90 degrees
    EXPECT_NEAR(a[0].real(), -2.0, 1e-12);
    EXPECT_NEAR(a[0].imag(), 2.0, 1e-12);
}

TEST(vector_ops, mean_power_and_energy) {
    const cvec a = {cplx{3.0, 4.0}, cplx{0.0, 0.0}};  // |a0|^2 = 25
    EXPECT_DOUBLE_EQ(energy(a), 25.0);
    EXPECT_DOUBLE_EQ(mean_power(a), 12.5);
    EXPECT_DOUBLE_EQ(mean_power(cvec{}), 0.0);
}

TEST(vector_ops, delay_prepends_zeros) {
    const cvec a = {cplx{1, 0}, cplx{2, 0}, cplx{3, 0}};
    const cvec delayed = delay_samples(a, 1);
    EXPECT_DOUBLE_EQ(delayed[0].real(), 0.0);
    EXPECT_DOUBLE_EQ(delayed[1].real(), 1.0);
    EXPECT_DOUBLE_EQ(delayed[2].real(), 2.0);
}

TEST(vector_ops, frequency_shift_moves_tone_bin) {
    const std::size_t n = 256;
    const cvec tone = make_tone(n, 10.0);
    // Shift by exactly 5 bins: fs such that one bin = fs / n.
    const double fs = 1000.0;
    const cvec shifted = frequency_shift(tone, 5.0 * fs / static_cast<double>(n), fs);
    const std::vector<double> power = power_spectrum(fft(shifted));
    EXPECT_EQ(argmax(power), 15u);
}

TEST(vector_ops, frequency_shift_matches_direct_synthesis) {
    // The phasor recurrence must agree with per-sample std::polar.
    const std::size_t n = 4096;
    const cvec ones(n, cplx{1.0, 0.0});
    const double f = 123.456, fs = 500e3;
    const cvec shifted = frequency_shift(ones, f, fs);
    for (std::size_t i = 0; i < n; i += 97) {
        const cplx expected =
            std::polar(1.0, 2.0 * std::numbers::pi * f * static_cast<double>(i) / fs);
        EXPECT_NEAR(std::abs(shifted[i] - expected), 0.0, 1e-9) << i;
    }
}

// --------------------------------------------------------------- peak --

TEST(peak, argmax_finds_maximum) {
    EXPECT_EQ(argmax({1.0, 5.0, 3.0}), 1u);
    EXPECT_THROW(argmax({}), ns::util::invalid_argument);
}

TEST(peak, find_peak_fractional_accuracy) {
    const std::size_t n = 256;
    for (double cycles : {20.0, 20.25, 20.5, 20.75}) {
        const cvec padded = fft_zero_padded(make_tone(n, cycles), n * 16);
        const ns::dsp::peak p = find_peak(power_spectrum(padded));
        EXPECT_NEAR(p.fractional_bin / 16.0, cycles, 0.05) << cycles;
    }
}

TEST(peak, find_peak_in_range_wraps) {
    std::vector<double> power(16, 0.1);
    power[1] = 5.0;
    power[14] = 9.0;
    // Range [12, 3] wraps through zero and must see both candidates.
    const ns::dsp::peak p = find_peak_in_range(power, 12, 3);
    EXPECT_EQ(p.bin, 14u);
    // Restricting to [0, 3] must pick the smaller peak.
    EXPECT_EQ(find_peak_in_range(power, 0, 3).bin, 1u);
}

TEST(peak, find_peaks_above_sorted_by_power) {
    std::vector<double> power(32, 0.01);
    power[5] = 2.0;
    power[20] = 7.0;
    power[27] = 4.0;
    const auto peaks = find_peaks_above(power, 1.0);
    ASSERT_EQ(peaks.size(), 3u);
    EXPECT_EQ(peaks[0].bin, 20u);
    EXPECT_EQ(peaks[1].bin, 27u);
    EXPECT_EQ(peaks[2].bin, 5u);
}

TEST(peak, find_peaks_above_requires_local_maximum) {
    // A plateau's interior point is not strictly greater than neighbours.
    std::vector<double> power = {0.0, 5.0, 5.0, 0.0};
    const auto peaks = find_peaks_above(power, 1.0);
    EXPECT_TRUE(peaks.empty());
}

// -------------------------------------------------------- spectrogram --

TEST(spectrogram, hann_window_shape) {
    const auto w = hann_window(64);
    EXPECT_NEAR(w.front(), 0.0, 1e-12);
    EXPECT_NEAR(w.back(), 0.0, 1e-12);
    EXPECT_NEAR(w[32], 1.0, 0.01);  // near centre
}

TEST(spectrogram, tone_energy_in_expected_column_band) {
    // A constant tone must produce the same peak bin in every column.
    const std::size_t n = 4096;
    const cvec tone = make_tone(n, 512.0);  // bin 512/4096 of fs -> bin 32 of 256
    stft_params params;
    params.window_size = 256;
    params.hop = 128;
    params.shift = false;
    const spectrogram_result grid = compute_spectrogram(tone, params);
    ASSERT_GT(grid.columns, 0u);
    for (std::size_t c = 0; c < grid.columns; ++c) {
        std::size_t best = 0;
        for (std::size_t b = 1; b < grid.bins; ++b) {
            if (grid.power_db[c * grid.bins + b] > grid.power_db[c * grid.bins + best]) {
                best = b;
            }
        }
        EXPECT_EQ(best, 32u) << "column " << c;
    }
}

TEST(spectrogram, short_signal_yields_empty_grid) {
    stft_params params;
    params.window_size = 256;
    const spectrogram_result grid = compute_spectrogram(cvec(100), params);
    EXPECT_EQ(grid.columns, 0u);
}

TEST(spectrogram, average_psd_scales_with_power) {
    // Doubling the amplitude must raise the PSD peak by ~6 dB.
    const std::size_t n = 8192;
    stft_params params;
    params.window_size = 256;
    params.shift = false;
    const auto psd1 = average_psd_db(make_tone(n, 1024.0, 1.0), params);
    const auto psd2 = average_psd_db(make_tone(n, 1024.0, 2.0), params);
    const std::size_t bin = 32;
    EXPECT_NEAR(psd2[bin] - psd1[bin], 6.02, 0.2);
}

TEST(spectrogram, rejects_bad_window) {
    stft_params params;
    params.window_size = 100;  // not a power of two
    EXPECT_THROW(compute_spectrogram(cvec(512), params), ns::util::invalid_argument);
}

}  // namespace
