// Unit tests for ns::phy — CSS parameters (Table 1), chirp generation,
// modulators, demodulator, framing, sensitivity.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numbers>

#include "netscatter/channel/awgn.hpp"
#include "netscatter/dsp/vector_ops.hpp"
#include "netscatter/phy/chirp.hpp"
#include "netscatter/phy/css_params.hpp"
#include "netscatter/phy/demodulator.hpp"
#include "netscatter/phy/frame.hpp"
#include "netscatter/phy/modulator.hpp"
#include "netscatter/phy/sensitivity.hpp"
#include "netscatter/util/error.hpp"
#include "netscatter/util/rng.hpp"

namespace {

using namespace ns::phy;
using ns::dsp::cplx;
using ns::dsp::cvec;

// --------------------------------------------------------- css_params --

TEST(css_params, deployed_configuration_derived_values) {
    const css_params p = deployed_params();
    EXPECT_EQ(p.num_bins(), 512u);
    EXPECT_EQ(p.samples_per_symbol(), 512u);
    EXPECT_NEAR(p.symbol_duration_s(), 1.024e-3, 1e-9);
    EXPECT_NEAR(p.symbol_rate_hz(), 976.5625, 1e-6);
    EXPECT_NEAR(p.onoff_bitrate_bps(), 976.5625, 1e-6);   // ~976 bps (§4.2)
    EXPECT_NEAR(p.lora_bitrate_bps(), 8789.0625, 1e-4);   // ~8.7 kbps (§4.4)
    EXPECT_NEAR(p.bin_spacing_hz(), 976.5625, 1e-6);      // ~976 Hz (Table 1)
    EXPECT_NEAR(p.time_per_bin_s(), 2e-6, 1e-12);         // 2 us (Table 1)
}

TEST(css_params, bin_displacement_formulas) {
    const css_params p = deployed_params();
    // ΔFFTbin = Δt * BW (§3.2.1): 2 us at 500 kHz -> 1 bin.
    EXPECT_NEAR(p.bins_from_time_offset(2e-6), 1.0, 1e-12);
    // 3.5 us of hardware delay exceeds one bin (§3.2.1).
    EXPECT_GT(p.bins_from_time_offset(3.5e-6), 1.0);
    // ΔFFTbin = 2^SF * Δf / BW (§3.2.2): 976.5625 Hz -> 1 bin.
    EXPECT_NEAR(p.bins_from_frequency_offset(976.5625), 1.0, 1e-9);
    // 150 Hz (Fig. 14a worst case) is ~0.15 bin.
    EXPECT_NEAR(p.bins_from_frequency_offset(150.0), 0.1536, 1e-3);
}

TEST(css_params, chirp_slope_collision_rule) {
    // (500 kHz, SF 9) and (250 kHz, SF 7) have equal slope BW^2 / 2^SF —
    // the pair LoRa cannot concurrently decode (§2.2).
    const css_params a{.bandwidth_hz = 500e3, .spreading_factor = 9};
    const css_params b{.bandwidth_hz = 250e3, .spreading_factor = 7};
    EXPECT_NEAR(a.chirp_slope_hz_per_s(), b.chirp_slope_hz_per_s(), 1e-6);
    const css_params c{.bandwidth_hz = 250e3, .spreading_factor = 8};
    EXPECT_NE(a.chirp_slope_hz_per_s(), c.chirp_slope_hz_per_s());
}

TEST(css_params, table1_rows_match_paper) {
    const auto configs = table1_configs();
    ASSERT_EQ(configs.size(), 6u);

    // Row 0: 500 kHz / SF 9 -> 2 us, 976 Hz, 976 bps, -123 dBm.
    EXPECT_NEAR(configs[0].max_time_variation_s, 2e-6, 1e-12);
    EXPECT_NEAR(configs[0].max_frequency_variation_hz, 976.5625, 1e-4);
    EXPECT_NEAR(configs[0].bitrate_bps, 976.5625, 1e-4);
    EXPECT_NEAR(configs[0].sensitivity_dbm, -123.0, 1.0);

    // Row 1: 500 kHz / SF 8 -> 2 us, 1953 Hz, 1953 bps, ~-120 dBm.
    EXPECT_NEAR(configs[1].max_time_variation_s, 2e-6, 1e-12);
    EXPECT_NEAR(configs[1].max_frequency_variation_hz, 1953.125, 1e-3);
    EXPECT_NEAR(configs[1].bitrate_bps, 1953.125, 1e-3);
    EXPECT_NEAR(configs[1].sensitivity_dbm, -120.0, 1.5);

    // Row 2: 250 kHz / SF 8 -> 4 us, 976 Hz, 976 bps, -123 dBm.
    EXPECT_NEAR(configs[2].max_time_variation_s, 4e-6, 1e-12);
    EXPECT_NEAR(configs[2].bitrate_bps, 976.5625, 1e-4);
    EXPECT_NEAR(configs[2].sensitivity_dbm, -123.0, 1.5);

    // Row 4: 125 kHz / SF 7 -> 8 us, 976 Hz, 976 bps, -123 dBm.
    EXPECT_NEAR(configs[4].max_time_variation_s, 8e-6, 1e-12);
    EXPECT_NEAR(configs[4].bitrate_bps, 976.5625, 1e-4);
    EXPECT_NEAR(configs[4].sensitivity_dbm, -123.0, 2.0);
}

// -------------------------------------------------------------- chirp --

TEST(chirp, unit_amplitude_everywhere) {
    const css_params p = deployed_params();
    for (const auto& sample : make_upchirp(p, 37.0)) {
        EXPECT_NEAR(std::abs(sample), 1.0, 1e-12);
    }
}

TEST(chirp, downchirp_is_conjugate_of_upchirp) {
    const css_params p{.bandwidth_hz = 125e3, .spreading_factor = 7};
    const cvec up = make_upchirp(p, 0.0);
    const cvec down = make_downchirp(p, 0.0);
    for (std::size_t i = 0; i < up.size(); ++i) {
        EXPECT_NEAR(std::abs(down[i] - std::conj(up[i])), 0.0, 1e-9);
    }
}

TEST(chirp, dechirp_reference_equals_baseline_downchirp) {
    const css_params p = deployed_params();
    const cvec ref = dechirp_reference(p);
    const cvec down = make_downchirp(p, 0.0);
    for (std::size_t i = 0; i < ref.size(); ++i) {
        EXPECT_EQ(ref[i], down[i]);
    }
}

TEST(chirp, out_of_range_shift_throws) {
    const css_params p = deployed_params();
    EXPECT_THROW(make_upchirp(p, 1024.0), ns::util::invalid_argument);
    EXPECT_THROW(make_upchirp_time_rotated(p, 512), ns::util::invalid_argument);
}

// Frequency-shift synthesis must be equivalent (up to a constant phase)
// to a true cyclic rotation in time, for every integer shift. This is the
// equivalence Fig. 3(c) rests on.
class chirp_shift_equivalence : public ::testing::TestWithParam<std::size_t> {};

TEST_P(chirp_shift_equivalence, frequency_shift_equals_time_rotation) {
    const css_params p{.bandwidth_hz = 500e3, .spreading_factor = 7};
    const std::size_t shift = GetParam();
    const cvec by_frequency = make_upchirp(p, static_cast<double>(shift));
    const cvec by_rotation = make_upchirp_time_rotated(p, shift);
    // Inner product magnitude == N iff the two are equal up to a global
    // phase.
    cplx inner{0.0, 0.0};
    for (std::size_t i = 0; i < by_frequency.size(); ++i) {
        inner += by_frequency[i] * std::conj(by_rotation[i]);
    }
    EXPECT_NEAR(std::abs(inner), static_cast<double>(p.num_bins()), 1e-6);
}

INSTANTIATE_TEST_SUITE_P(shifts, chirp_shift_equivalence,
                         ::testing::Values(0, 1, 2, 5, 31, 64, 100, 127));

// Dechirping a shift-s chirp produces an FFT peak exactly at bin s.
class chirp_peak_location : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(chirp_peak_location, peak_at_assigned_bin) {
    const css_params p = deployed_params();
    const std::uint32_t shift = GetParam();
    const demodulator demod(p, 1);
    const cvec symbol = make_upchirp(p, static_cast<double>(shift));
    const auto power = demod.symbol_power_spectrum(symbol);
    EXPECT_EQ(ns::dsp::argmax(power), shift);
}

INSTANTIATE_TEST_SUITE_P(shifts, chirp_peak_location,
                         ::testing::Values(0, 1, 2, 17, 100, 255, 256, 400, 511));

TEST(chirp, fractional_shift_lands_between_bins) {
    const css_params p = deployed_params();
    const demodulator demod(p, 16);
    const cvec symbol = make_upchirp(p, 100.5);
    const ns::dsp::peak pk = demod.find_symbol_peak(symbol);
    EXPECT_NEAR(pk.fractional_bin, 100.5, 0.1);
}

TEST(chirp, orthogonality_of_distinct_shifts) {
    // Energy of shift-a chirp leaking into bin b (a != b) must be tiny
    // compared with the main peak — the basis of concurrent decoding.
    const css_params p{.bandwidth_hz = 500e3, .spreading_factor = 8};
    const demodulator demod(p, 1);
    const auto power = demod.symbol_power_spectrum(make_upchirp(p, 40.0));
    const double main_peak = power[40];
    for (std::size_t bin = 0; bin < power.size(); ++bin) {
        if (bin == 40) continue;
        EXPECT_LT(power[bin], main_peak * 1e-6) << "bin " << bin;
    }
}

// -------------------------------------------------------- lora modem --

TEST(lora_modulator, rejects_out_of_range_symbol) {
    const lora_modulator mod(deployed_params());
    EXPECT_THROW(mod.modulate_symbol(512), ns::util::invalid_argument);
}

TEST(lora_modulator, bits_to_symbols_packs_msb_first) {
    const css_params p{.bandwidth_hz = 500e3, .spreading_factor = 4};
    const lora_modulator mod(p);
    // 1010 1100 -> symbols 0b1010=10, 0b1100=12.
    const std::vector<bool> bits = {1, 0, 1, 0, 1, 1, 0, 0};
    const auto symbols = mod.bits_to_symbols(bits);
    ASSERT_EQ(symbols.size(), 2u);
    EXPECT_EQ(symbols[0], 10u);
    EXPECT_EQ(symbols[1], 12u);
}

TEST(lora_modulator, partial_final_symbol_zero_padded) {
    const css_params p{.bandwidth_hz = 500e3, .spreading_factor = 4};
    const lora_modulator mod(p);
    const std::vector<bool> bits = {1, 1};  // -> 0b1100 = 12
    const auto symbols = mod.bits_to_symbols(bits);
    ASSERT_EQ(symbols.size(), 1u);
    EXPECT_EQ(symbols[0], 12u);
    EXPECT_EQ(mod.symbols_to_bits(symbols, 2), bits);
}

TEST(lora_modulator, bit_symbol_roundtrip) {
    const lora_modulator mod(deployed_params());
    ns::util::rng gen(42);
    const std::vector<bool> bits = gen.bits(45);  // 5 SF-9 symbols
    const auto symbols = mod.bits_to_symbols(bits);
    EXPECT_EQ(mod.symbols_to_bits(symbols, bits.size()), bits);
}

TEST(lora_modem, clean_demodulation_all_symbol_values) {
    const css_params p{.bandwidth_hz = 500e3, .spreading_factor = 7};
    const lora_modulator mod(p);
    const demodulator demod(p);
    for (std::uint32_t value = 0; value < p.num_bins(); value += 7) {
        EXPECT_EQ(demod.demodulate_lora_symbol(mod.modulate_symbol(value)), value);
    }
}

TEST(lora_modem, demodulates_below_noise_floor) {
    // At SNR = -10 dB the 2^9 processing gain (27 dB) still yields a
    // clean decision.
    const css_params p = deployed_params();
    const lora_modulator mod(p);
    const demodulator demod(p);
    ns::util::rng gen(7);
    int errors = 0;
    const int trials = 200;
    for (int t = 0; t < trials; ++t) {
        const auto value = static_cast<std::uint32_t>(gen.uniform_int(0, 511));
        cvec symbol = mod.modulate_symbol(value);
        ns::channel::add_noise_for_unit_signal_snr(symbol, -10.0, gen);
        if (demod.demodulate_lora_symbol(symbol) != value) ++errors;
    }
    EXPECT_LE(errors, 2);
}

// ------------------------------------------------- distributed modem --

TEST(distributed_modulator, on_symbol_is_assigned_chirp) {
    const css_params p = deployed_params();
    const distributed_modulator mod(p, 42);
    const cvec expected = make_upchirp(p, 42.0);
    ASSERT_EQ(mod.on_symbol().size(), expected.size());
    for (std::size_t i = 0; i < expected.size(); ++i) {
        EXPECT_NEAR(std::abs(mod.on_symbol()[i] - expected[i]), 0.0, 1e-12);
    }
}

TEST(distributed_modulator, off_bits_produce_silence) {
    const css_params p = deployed_params();
    const distributed_modulator mod(p, 10);
    const cvec payload = mod.modulate_payload({true, false, true});
    const std::size_t sps = p.samples_per_symbol();
    ASSERT_EQ(payload.size(), 3 * sps);
    EXPECT_GT(ns::dsp::mean_power(std::span(payload).subspan(0, sps)), 0.9);
    EXPECT_EQ(ns::dsp::mean_power(std::span(payload).subspan(sps, sps)), 0.0);
    EXPECT_GT(ns::dsp::mean_power(std::span(payload).subspan(2 * sps, sps)), 0.9);
}

TEST(distributed_modulator, preamble_six_up_two_down) {
    const css_params p = deployed_params();
    const distributed_modulator mod(p, 8);
    const cvec preamble = mod.modulate_preamble();
    const std::size_t sps = p.samples_per_symbol();
    ASSERT_EQ(preamble.size(), 8 * sps);
    // Symbols 0..5 must match the assigned upchirp, 6..7 the downchirp.
    const cvec up = make_upchirp(p, 8.0);
    const cvec down = make_downchirp(p, 8.0);
    for (std::size_t i = 0; i < sps; ++i) {
        EXPECT_NEAR(std::abs(preamble[i] - up[i]), 0.0, 1e-12);
        EXPECT_NEAR(std::abs(preamble[6 * sps + i] - down[i]), 0.0, 1e-12);
    }
}

TEST(distributed_modulator, packet_length) {
    const css_params p = deployed_params();
    const distributed_modulator mod(p, 0);
    const cvec packet = mod.modulate_packet(std::vector<bool>(40, true));
    EXPECT_EQ(packet.size(), (8 + 40) * p.samples_per_symbol());
}

TEST(distributed_modulator, shift_out_of_range_throws) {
    EXPECT_THROW(distributed_modulator(deployed_params(), 512),
                 ns::util::invalid_argument);
}

// -------------------------------------------------------- demodulator --

TEST(demodulator, padding_must_be_power_of_two) {
    EXPECT_THROW(demodulator(deployed_params(), 3), ns::util::invalid_argument);
}

TEST(demodulator, power_at_bin_tracks_fractional_drift) {
    // A device drifted by 0.3 bins must still credit its own bin.
    const css_params p = deployed_params();
    const demodulator demod(p, 8);
    const cvec symbol = make_upchirp(p, 100.3);
    const auto power = demod.symbol_power_spectrum(symbol);
    const double at_own = demod.power_at_bin(power, 100);
    const double at_other = demod.power_at_bin(power, 200);
    EXPECT_GT(at_own, 100.0 * at_other);
}

TEST(demodulator, wrong_length_symbol_throws) {
    const demodulator demod(deployed_params());
    EXPECT_THROW(demod.symbol_power_spectrum(cvec(100)), ns::util::invalid_argument);
}

TEST(demodulator, padded_size) {
    const demodulator demod(deployed_params(), 8);
    EXPECT_EQ(demod.padded_size(), 512u * 8u);
    EXPECT_EQ(demod.padding_factor(), 8u);
}

// -------------------------------------------------------------- frame --

TEST(frame, linklayer_format_is_40_bits_on_air) {
    const frame_format f = linklayer_format();
    EXPECT_EQ(f.payload_plus_crc_bits(), 40u);  // §4.4: payload + CRC = 40 bits
    EXPECT_EQ(f.netscatter_symbols(), 48u);     // 8 preamble + 40 payload
}

TEST(frame, netscatter_airtime) {
    const frame_format f = linklayer_format();
    const css_params p = deployed_params();
    EXPECT_NEAR(f.netscatter_airtime_s(p), 48.0 * 1.024e-3, 1e-9);
}

TEST(frame, lora_symbol_count_rounds_up) {
    const frame_format f = linklayer_format();
    const css_params p = deployed_params();  // SF 9: ceil(40/9) = 5 symbols
    EXPECT_EQ(f.lora_symbols(p), 8u + 5u);
    EXPECT_NEAR(f.lora_airtime_s(p), 13.0 * 1.024e-3, 1e-9);
}

TEST(frame, build_and_check_roundtrip) {
    const frame_format f = linklayer_format();
    ns::util::rng gen(1);
    const std::vector<bool> payload = gen.bits(f.payload_bits);
    const std::vector<bool> bits = build_frame_bits(f, payload);
    ASSERT_EQ(bits.size(), f.payload_plus_crc_bits());
    const frame_check_result check = check_frame_bits(f, bits);
    EXPECT_TRUE(check.ok);
    EXPECT_EQ(check.payload, payload);
}

TEST(frame, check_rejects_corruption_and_bad_length) {
    const frame_format f = linklayer_format();
    ns::util::rng gen(2);
    std::vector<bool> bits = build_frame_bits(f, gen.bits(f.payload_bits));
    bits[3] = !bits[3];
    EXPECT_FALSE(check_frame_bits(f, bits).ok);
    bits.pop_back();
    EXPECT_FALSE(check_frame_bits(f, bits).ok);
}

TEST(frame, build_validates_payload_size) {
    EXPECT_THROW(build_frame_bits(linklayer_format(), std::vector<bool>(10)),
                 ns::util::invalid_argument);
}

// -------------------------------------------------------- sensitivity --

TEST(sensitivity, anchor_point_sf9_500khz) {
    const css_params p = deployed_params();
    EXPECT_NEAR(sensitivity_dbm(p), -123.5, 0.6);
}

TEST(sensitivity, improves_with_sf_and_narrower_bw) {
    const css_params sf9{.bandwidth_hz = 500e3, .spreading_factor = 9};
    const css_params sf10{.bandwidth_hz = 500e3, .spreading_factor = 10};
    EXPECT_LT(sensitivity_dbm(sf10), sensitivity_dbm(sf9));
    const css_params narrow{.bandwidth_hz = 125e3, .spreading_factor = 9};
    EXPECT_LT(sensitivity_dbm(narrow), sensitivity_dbm(sf9));
}

TEST(sensitivity, snr_min_range_check) {
    EXPECT_NEAR(snr_min_db(9), -12.5, 1e-12);
    EXPECT_NEAR(snr_min_db(7), -7.5, 1e-12);
    EXPECT_THROW(snr_min_db(4), ns::util::invalid_argument);
    EXPECT_THROW(snr_min_db(13), ns::util::invalid_argument);
}

TEST(sensitivity, rate_table_sorted_and_capped) {
    const auto table = rate_adaptation_table();
    ASSERT_FALSE(table.empty());
    for (std::size_t i = 1; i < table.size(); ++i) {
        EXPECT_GE(table[i - 1].bitrate_bps, table[i].bitrate_bps);
    }
    for (const auto& option : table) {
        EXPECT_LE(option.bitrate_bps, max_lora_bitrate_bps);
    }
}

TEST(sensitivity, best_bitrate_monotone_in_rssi) {
    double previous = 0.0;
    for (double rssi = -135.0; rssi <= -60.0; rssi += 5.0) {
        const double bitrate = best_bitrate_bps(rssi);
        EXPECT_GE(bitrate, previous) << "rssi " << rssi;
        previous = bitrate;
    }
    // Strong devices reach the paper's 32 kbps cap; dead links get zero.
    EXPECT_DOUBLE_EQ(best_bitrate_bps(-60.0), max_lora_bitrate_bps);
    EXPECT_DOUBLE_EQ(best_bitrate_bps(-150.0), 0.0);
}


TEST(sensitivity, concurrent_config_analysis_matches_paper) {
    // §2.2: 19 distinct chirp slopes across the LoRa BW family and SF
    // 6..12; only 8 classes survive the -123 dBm / 1 kbps constraints.
    const auto analysis = analyze_concurrent_configs();
    EXPECT_EQ(analysis.distinct_slope_classes, 19u);
    EXPECT_EQ(analysis.usable_classes, 8u);
    ASSERT_EQ(analysis.usable_representatives.size(), 8u);
    // Every representative meets the constraints and the deployed
    // (500 kHz, SF 9) configuration is among them.
    bool deployed_found = false;
    for (const auto& p : analysis.usable_representatives) {
        EXPECT_LE(sensitivity_dbm(p), -123.0);
        EXPECT_GE(p.lora_bitrate_bps(), 1000.0);
        if (p.bandwidth_hz == 500e3 && p.spreading_factor == 9) deployed_found = true;
    }
    EXPECT_TRUE(deployed_found);
}

TEST(sensitivity, concurrent_representatives_have_distinct_slopes) {
    const auto analysis = analyze_concurrent_configs();
    std::vector<double> slopes;
    for (const auto& p : analysis.usable_representatives) {
        slopes.push_back(p.chirp_slope_hz_per_s());
    }
    std::sort(slopes.begin(), slopes.end());
    EXPECT_EQ(std::adjacent_find(slopes.begin(), slopes.end()), slopes.end());
}

TEST(sensitivity, relaxed_constraints_admit_more_classes) {
    const auto strict = analyze_concurrent_configs(-123.0, 1000.0);
    const auto relaxed = analyze_concurrent_configs(-110.0, 100.0);
    EXPECT_GT(relaxed.usable_classes, strict.usable_classes);
    EXPECT_EQ(relaxed.distinct_slope_classes, strict.distinct_slope_classes);
}

}  // namespace
