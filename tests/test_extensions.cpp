// Tests for the extension modules: streaming receiver, group scheduler,
// grouped network simulation (§3.3.3 scheduled groups), association-phase
// (Aloha) simulation, and the IC power/energy model.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <span>

#include "netscatter/channel/awgn.hpp"
#include "netscatter/channel/superposition.hpp"
#include "netscatter/device/power_budget.hpp"
#include "netscatter/mac/scheduler.hpp"
#include "netscatter/phy/modulator.hpp"
#include "netscatter/rx/stream_receiver.hpp"
#include "netscatter/sim/association_sim.hpp"
#include "netscatter/sim/network_sim.hpp"
#include "netscatter/sim/timeline.hpp"
#include "netscatter/util/error.hpp"
#include "netscatter/util/rng.hpp"

namespace {

using ns::dsp::cplx;
using ns::dsp::cvec;

// ---------------------------------------------------- stream receiver --

struct stream_fixture {
    ns::rx::stream_receiver_params params;
    std::vector<std::pair<std::size_t, ns::rx::decode_result>> packets;
    ns::rx::stream_receiver rx;

    stream_fixture()
        : params{.rx = {.phy = ns::phy::deployed_params(),
                        .frame = ns::phy::linklayer_format()}},
          rx(params, [this](std::size_t offset, const ns::rx::decode_result& result) {
              packets.emplace_back(offset, result);
          }) {}
};

cvec make_round(const ns::rx::receiver_params& rxp,
                const std::vector<std::uint32_t>& shifts,
                std::vector<std::vector<bool>>& sent, ns::util::rng& gen) {
    std::vector<ns::channel::tx_contribution> txs;
    std::vector<cvec> waveforms;
    for (std::uint32_t shift : shifts) {
        const auto bits =
            ns::phy::build_frame_bits(rxp.frame, gen.bits(rxp.frame.payload_bits));
        sent.push_back(bits);
        ns::phy::distributed_modulator mod(rxp.phy, shift);
        ns::channel::tx_contribution tx;
        waveforms.push_back(mod.modulate_packet(bits));
        tx.waveform = std::span<const ns::dsp::cplx>(waveforms.back());
        tx.snr_db = 6.0;
        txs.push_back(std::move(tx));
    }
    const std::size_t samples =
        (rxp.frame.preamble_symbols + rxp.frame.payload_plus_crc_bits()) *
        rxp.phy.samples_per_symbol();
    ns::channel::channel_config config;
    ns::channel::channel_workspace chan_ws;
    return ns::channel::combine(
        std::span<const ns::channel::tx_contribution>(txs), samples, rxp.phy,
        config, gen, chan_ws);
}

TEST(stream_receiver, decodes_two_rounds_with_idle_gaps) {
    stream_fixture fx;
    fx.rx.set_registered_shifts({50, 300});
    ns::util::rng gen(1);

    std::vector<std::vector<bool>> sent;
    const cvec round1 = make_round(fx.params.rx, {50, 300}, sent, gen);
    const cvec round2 = make_round(fx.params.rx, {50, 300}, sent, gen);
    const cvec gap = ns::channel::make_noise(3000, 1.0, gen);

    fx.rx.push_samples(gap);
    fx.rx.push_samples(round1);
    fx.rx.push_samples(gap);
    fx.rx.push_samples(round2);
    fx.rx.push_samples(gap);  // flush the tail

    ASSERT_EQ(fx.rx.packets_decoded(), 2u);
    ASSERT_EQ(fx.packets.size(), 2u);
    // Round 1: both devices decode with the payloads sent first.
    EXPECT_TRUE(fx.packets[0].second.reports[0].crc_ok);
    EXPECT_EQ(fx.packets[0].second.reports[0].bits, sent[0]);
    EXPECT_EQ(fx.packets[0].second.reports[1].bits, sent[1]);
    // Round 2 payloads are the second pair.
    EXPECT_EQ(fx.packets[1].second.reports[0].bits, sent[2]);
    EXPECT_EQ(fx.packets[1].second.reports[1].bits, sent[3]);
    // Offsets are in stream coordinates (first packet after the 3000-gap).
    EXPECT_NEAR(static_cast<double>(fx.packets[0].first), 3000.0, 4.0);
}

TEST(stream_receiver, packet_straddling_chunks_survives) {
    stream_fixture fx;
    fx.rx.set_registered_shifts({128});
    ns::util::rng gen(2);
    std::vector<std::vector<bool>> sent;
    const cvec round = make_round(fx.params.rx, {128}, sent, gen);

    // Feed in awkward chunk sizes crossing every boundary.
    std::size_t pos = 0;
    for (std::size_t chunk : {100ul, 5000ul, 12345ul, 1ul, 100000ul}) {
        const std::size_t n = std::min(chunk, round.size() - pos);
        fx.rx.push_samples(std::span(round).subspan(pos, n));
        pos += n;
        if (pos >= round.size()) break;
    }
    fx.rx.push_samples(ns::channel::make_noise(2000, 1.0, gen));
    EXPECT_EQ(fx.rx.packets_decoded(), 1u);
    ASSERT_EQ(fx.packets.size(), 1u);
    EXPECT_EQ(fx.packets[0].second.reports[0].bits, sent[0]);
}

TEST(stream_receiver, pure_noise_produces_no_packets) {
    stream_fixture fx;
    fx.rx.set_registered_shifts({128});
    ns::util::rng gen(3);
    for (int i = 0; i < 5; ++i) {
        fx.rx.push_samples(ns::channel::make_noise(30000, 1.0, gen));
    }
    EXPECT_EQ(fx.rx.packets_decoded(), 0u);
    EXPECT_EQ(fx.rx.samples_consumed(), 150000u);
}

TEST(stream_receiver, rejects_null_callback_and_tiny_buffer) {
    ns::rx::stream_receiver_params params;
    params.rx.phy = ns::phy::deployed_params();
    EXPECT_THROW(ns::rx::stream_receiver(params, nullptr), ns::util::invalid_argument);
    params.max_buffer_samples = 10;
    EXPECT_THROW(ns::rx::stream_receiver(params, [](std::size_t,
                                                    const ns::rx::decode_result&) {}),
                 ns::util::invalid_argument);
}

// ----------------------------------------------------- group scheduler --

TEST(group_scheduler, single_group_when_population_fits) {
    ns::mac::group_scheduler scheduler({.group_capacity = 256, .max_dynamic_range_db = 35});
    std::vector<ns::mac::device_power> devices;
    for (std::uint32_t i = 0; i < 100; ++i) devices.push_back({i, -100.0 - 0.1 * i});
    const auto groups = scheduler.partition(devices);
    ASSERT_EQ(groups.size(), 1u);
    EXPECT_EQ(groups[0].size(), 100u);
    EXPECT_LE(groups[0].dynamic_range_db(), 35.0);
}

TEST(group_scheduler, splits_on_capacity) {
    ns::mac::group_scheduler scheduler({.group_capacity = 64, .max_dynamic_range_db = 100});
    std::vector<ns::mac::device_power> devices;
    for (std::uint32_t i = 0; i < 200; ++i) devices.push_back({i, -100.0});
    const auto groups = scheduler.partition(devices);
    ASSERT_EQ(groups.size(), 4u);  // 64+64+64+8
    EXPECT_EQ(groups[0].size(), 64u);
    EXPECT_EQ(groups[3].size(), 8u);
}

TEST(group_scheduler, splits_on_dynamic_range) {
    ns::mac::group_scheduler scheduler({.group_capacity = 256, .max_dynamic_range_db = 35});
    // 60 dB spread: must split into >= 2 groups each within 35 dB.
    std::vector<ns::mac::device_power> devices;
    for (std::uint32_t i = 0; i < 120; ++i) {
        devices.push_back({i, -80.0 - 0.5 * static_cast<double>(i)});  // -80..-139.5
    }
    const auto groups = scheduler.partition(devices);
    ASSERT_GE(groups.size(), 2u);
    for (const auto& group : groups) {
        EXPECT_LE(group.dynamic_range_db(), 35.0 + 1e-9);
    }
    // Groups are power-ordered: strongest group first.
    EXPECT_GT(groups.front().max_power_dbm, groups.back().max_power_dbm);
}

TEST(group_scheduler, groups_partition_population_exactly) {
    ns::mac::group_scheduler scheduler({.group_capacity = 50, .max_dynamic_range_db = 20});
    ns::util::rng gen(4);
    std::vector<ns::mac::device_power> devices;
    for (std::uint32_t i = 0; i < 333; ++i) {
        devices.push_back({i, gen.uniform(-130.0, -70.0)});
    }
    const auto groups = scheduler.partition(devices);
    std::size_t total = 0;
    std::set<std::uint32_t> seen;
    for (const auto& group : groups) {
        total += group.size();
        for (std::uint32_t id : group.device_ids) seen.insert(id);
    }
    EXPECT_EQ(total, 333u);
    EXPECT_EQ(seen.size(), 333u);
}

TEST(group_scheduler, round_robin) {
    EXPECT_EQ(ns::mac::group_scheduler::group_for_round(0, 3), 0);
    EXPECT_EQ(ns::mac::group_scheduler::group_for_round(4, 3), 1);
    EXPECT_THROW(ns::mac::group_scheduler::group_for_round(1, 0),
                 ns::util::invalid_argument);
}

// ------------------------------------------------------- grouped sim --

TEST(grouped_sim, wide_population_grouped_delivers) {
    // A deployment stretched beyond one group's dynamic range: §3.3.3
    // grouping splits it into scheduled groups and each group decodes
    // well on its own round.
    ns::sim::deployment_params dep_params;
    dep_params.min_distance_m = 4.0;           // wider near-far spread
    dep_params.pathloss.exponent = 2.8;
    const ns::sim::deployment dep(dep_params, 96, 31);

    ns::sim::sim_config config;
    config.seed = 9;
    config.zero_padding = 4;
    config.grouping.enabled = true;
    config.grouping.group_capacity = 256;
    config.grouping.max_dynamic_range_db = 30.0;

    // Probe the partition size, then run two full round-robin schedules
    // so every group is addressed twice.
    const std::size_t num_groups =
        ns::sim::network_simulator(dep, config).num_groups();
    ASSERT_GE(num_groups, 2u);
    config.rounds = 2 * num_groups;
    ns::sim::network_simulator sim(dep, config);
    const ns::sim::sim_result result = sim.run();

    // The stretched deployment leaves a few devices near/below the
    // sensitivity edge (dead links grouping cannot revive), so the bar is
    // slightly below the in-range deployments' ~99%.
    EXPECT_GT(result.delivery_rate(), 0.85);
    EXPECT_EQ(result.num_groups, num_groups);

    // Per-group spans respect the configured dynamic-range cap and the
    // per-group counters decompose the totals exactly.
    std::size_t delivered = 0;
    for (const auto& group : result.groups) {
        if (group.members > 0) {
            EXPECT_LE(group.max_power_dbm - group.min_power_dbm, 30.0 + 1e-9);
        }
        delivered += group.delivered;
    }
    EXPECT_EQ(delivered, result.total_delivered);

    // Serving the whole population once takes one round per group.
    const double single = ns::sim::netscatter_round(config.frame, config.phy,
                                                    ns::sim::query_config::config1)
                              .total_time_s;
    EXPECT_GT(single * static_cast<double>(num_groups), single);
}

TEST(grouped_sim, single_group_matches_plain_simulation_structure) {
    // A population that fits one group degenerates to the plain
    // simulator: every round schedules group 0 and addresses everyone.
    const ns::sim::deployment dep(ns::sim::deployment_params{}, 24, 32);
    ns::sim::sim_config config;
    config.rounds = 2;
    config.zero_padding = 4;
    config.grouping.enabled = true;
    config.grouping.group_capacity = 256;
    config.grouping.max_dynamic_range_db = 35.0;
    ns::sim::network_simulator sim(dep, config);
    ASSERT_EQ(sim.num_groups(), 1u);
    const ns::sim::sim_result result = sim.run();
    EXPECT_EQ(result.num_groups, 1u);
    for (const auto& round : result.rounds) {
        EXPECT_EQ(round.scheduled_group, 0);
        EXPECT_EQ(round.scheduled, 24u);
    }
    EXPECT_GT(result.delivery_rate(), 0.9);
}

// -------------------------------------------------- association phase --

TEST(association_sim, all_devices_eventually_join) {
    const ns::sim::deployment dep(ns::sim::deployment_params{}, 40, 33);
    ns::sim::association_sim_params params;
    params.seed = 5;
    const auto result = ns::sim::simulate_association(dep, params);
    EXPECT_TRUE(result.all_joined);
    EXPECT_EQ(result.shifts.size(), 40u);
    // With one grant per query, joining 40 devices needs >= 40 rounds.
    EXPECT_GE(result.rounds_used, 40u);
    EXPECT_LT(result.rounds_used, params.max_rounds);
}

TEST(association_sim, assigned_shifts_are_distinct) {
    const ns::sim::deployment dep(ns::sim::deployment_params{}, 30, 34);
    ns::sim::association_sim_params params;
    params.seed = 6;
    const auto result = ns::sim::simulate_association(dep, params);
    ASSERT_TRUE(result.all_joined);
    std::set<std::uint32_t> shifts;
    for (const auto& [id, shift] : result.shifts) shifts.insert(shift);
    EXPECT_EQ(shifts.size(), 30u);
}

TEST(association_sim, contention_produces_collisions_then_resolves) {
    // Many simultaneous joiners on two association shifts: collisions
    // are expected, and backoff must still converge.
    const ns::sim::deployment dep(ns::sim::deployment_params{}, 64, 35);
    ns::sim::association_sim_params params;
    params.seed = 7;
    params.aloha_initial_window = 2;  // aggressive -> lots of collisions
    const auto result = ns::sim::simulate_association(dep, params);
    EXPECT_TRUE(result.all_joined);
    EXPECT_GT(result.collisions, 0u);
    EXPECT_GT(result.requests_sent, 64u);  // retries happened
}

TEST(association_sim, join_rounds_recorded_monotonically_valid) {
    const ns::sim::deployment dep(ns::sim::deployment_params{}, 16, 36);
    ns::sim::association_sim_params params;
    params.seed = 8;
    const auto result = ns::sim::simulate_association(dep, params);
    ASSERT_TRUE(result.all_joined);
    for (std::size_t r : result.join_round) {
        EXPECT_GE(r, 1u);
        EXPECT_LE(r, result.rounds_used);
    }
}

// ------------------------------------------------------ power budget --

TEST(power_budget, ic_total_matches_paper) {
    const ns::device::ic_power_model power{};
    EXPECT_NEAR(power.transmit_w(), 45.2e-6, 0.1e-6);  // §4.1: 45.2 uW
    EXPECT_NEAR(power.listen_w(), 6.7e-6, 0.1e-6);
}

TEST(power_budget, netscatter_round_energy_components) {
    const ns::device::ic_power_model power{};
    const auto phy = ns::phy::deployed_params();
    const auto frame = ns::phy::linklayer_format();
    const double query_s = 32.0 / 160e3;
    const double period_s = 1.0;  // one report per second
    const auto energy =
        ns::device::netscatter_round_energy(power, phy, frame, query_s, period_s);
    // Transmit: 45.2 uW x 49.15 ms ~ 2.22 uJ dominates.
    EXPECT_NEAR(energy.transmit_j, 45.2e-6 * 48.0 * 1.024e-3, 1e-8);
    EXPECT_GT(energy.transmit_j, energy.listen_j);
    EXPECT_NEAR(energy.total_j,
                energy.listen_j + energy.transmit_j + energy.sleep_j, 1e-15);
    EXPECT_NEAR(energy.per_payload_bit_j, energy.total_j / 32.0, 1e-15);
}

TEST(power_budget, energy_tradeoff_vs_polled_lora) {
    // The honest energy picture: a polled device must listen to all 256
    // queries per epoch (NetScatter listens to one — two orders of
    // magnitude less listening energy), but NetScatter's ON-OFF packet is
    // 48 symbols vs LoRa's 13, so its per-report transmit energy is
    // ~3.7x higher. NetScatter's claim is network throughput/latency,
    // not per-device energy; both stay in the microjoule class.
    const ns::device::ic_power_model power{};
    const auto phy = ns::phy::deployed_params();
    const auto frame = ns::phy::linklayer_format();
    const auto netscatter = ns::device::netscatter_round_energy(
        power, phy, frame, 32.0 / 160e3, 4.0);
    const auto polled = ns::device::lora_polled_epoch_energy(
        power, phy, frame, 28.0 / 160e3, 256);
    EXPECT_LT(netscatter.listen_j, polled.listen_j / 100.0);
    EXPECT_NEAR(netscatter.transmit_j / polled.transmit_j, 48.0 / 13.0, 0.01);
    EXPECT_LT(netscatter.total_j, 5e-6);
    EXPECT_LT(polled.total_j, 5e-6);
}

TEST(power_budget, round_energy_validates_period) {
    const ns::device::ic_power_model power{};
    EXPECT_THROW(ns::device::netscatter_round_energy(
                     power, ns::phy::deployed_params(), ns::phy::linklayer_format(),
                     32.0 / 160e3, 0.01),
                 ns::util::invalid_argument);
}

TEST(power_budget, battery_life_sane) {
    // CR2032-class cell (225 mAh, 3 V) reporting every 10 s at ~2.3 uJ
    // per round: decades — i.e. the battery's shelf life dominates, the
    // paper's "operate on button cells" claim.
    const ns::device::ic_power_model power{};
    const auto energy = ns::device::netscatter_round_energy(
        power, ns::phy::deployed_params(), ns::phy::linklayer_format(), 32.0 / 160e3,
        10.0);
    const double years =
        ns::device::battery_life_years(225.0, 3.0, energy.total_j, 10.0);
    EXPECT_GT(years, 10.0);
    EXPECT_THROW(ns::device::battery_life_years(0.0, 3.0, 1e-6, 1.0),
                 ns::util::invalid_argument);
}


// --------------------------------------------- additional coverage --

TEST(stream_receiver, back_to_back_packets_no_gap) {
    stream_fixture fx;
    fx.rx.set_registered_shifts({200});
    ns::util::rng gen(41);
    std::vector<std::vector<bool>> sent;
    cvec both = make_round(fx.params.rx, {200}, sent, gen);
    const cvec second = make_round(fx.params.rx, {200}, sent, gen);
    both.insert(both.end(), second.begin(), second.end());
    fx.rx.push_samples(both);
    fx.rx.push_samples(ns::channel::make_noise(2000, 1.0, gen));
    EXPECT_EQ(fx.rx.packets_decoded(), 2u);
    ASSERT_EQ(fx.packets.size(), 2u);
    EXPECT_EQ(fx.packets[0].second.reports[0].bits, sent[0]);
    EXPECT_EQ(fx.packets[1].second.reports[0].bits, sent[1]);
}

TEST(grouped_sim, per_group_metrics_decompose_schedule) {
    // Two capacity-split groups served round-robin: the per-group
    // accumulators carry the scheduled-round bookkeeping the link-layer
    // rate derivation needs (delivered per scheduled round per group over
    // a network latency of one round per group).
    const ns::sim::deployment dep(ns::sim::deployment_params{}, 16, 43);
    ns::sim::sim_config config;
    config.rounds = 4;
    config.zero_padding = 4;
    config.grouping.enabled = true;
    config.grouping.group_capacity = 8;
    config.grouping.max_dynamic_range_db = 100.0;
    ns::sim::network_simulator sim(dep, config);
    ASSERT_EQ(sim.num_groups(), 2u);
    const ns::sim::sim_result result = sim.run();

    ASSERT_EQ(result.groups.size(), 2u);
    std::size_t scheduled_rounds = 0;
    double delivered_per_schedule = 0.0;
    for (const auto& group : result.groups) {
        EXPECT_EQ(group.members, 8u);
        EXPECT_EQ(group.scheduled_rounds, 2u);  // 4 rounds, round-robin
        scheduled_rounds += group.scheduled_rounds;
        delivered_per_schedule += static_cast<double>(group.delivered) /
                                  static_cast<double>(group.scheduled_rounds);
    }
    EXPECT_EQ(scheduled_rounds, result.rounds.size());

    // The link-layer rate over the schedule follows from the totals.
    const double latency =
        ns::sim::netscatter_round(config.frame, config.phy,
                                  ns::sim::query_config::config1)
            .total_time_s *
        static_cast<double>(result.num_groups);
    const double rate_bps = delivered_per_schedule *
                            static_cast<double>(config.frame.payload_bits) / latency;
    EXPECT_GT(rate_bps, 0.0);
}

TEST(power_budget, polled_epoch_listen_scales_with_population) {
    const ns::device::ic_power_model power{};
    const auto phy = ns::phy::deployed_params();
    const auto frame = ns::phy::linklayer_format();
    const auto small = ns::device::lora_polled_epoch_energy(power, phy, frame,
                                                            28.0 / 160e3, 16);
    const auto large = ns::device::lora_polled_epoch_energy(power, phy, frame,
                                                            28.0 / 160e3, 256);
    EXPECT_NEAR(large.listen_j / small.listen_j, 16.0, 1e-9);
    EXPECT_DOUBLE_EQ(large.transmit_j, small.transmit_j);
}


}  // namespace
