// Integration tests — cross-module behaviour: the full protocol loop
// (AP <-> devices <-> channel <-> receiver), the headline paper numbers,
// and the bandwidth-aggregation mode.
#include <gtest/gtest.h>

#include <cmath>

#include "netscatter/baseline/lora_link.hpp"
#include "netscatter/channel/superposition.hpp"
#include "netscatter/dsp/vector_ops.hpp"
#include "netscatter/mac/ap.hpp"
#include "netscatter/phy/aggregation.hpp"
#include "netscatter/phy/modulator.hpp"
#include "netscatter/rx/receiver.hpp"
#include "netscatter/sim/deployment.hpp"
#include "netscatter/sim/network_sim.hpp"
#include "netscatter/sim/timeline.hpp"
#include "netscatter/util/rng.hpp"

namespace {

using ns::dsp::cvec;

// ---------------------------------------------- protocol walkthrough --

TEST(integration, association_handshake_end_to_end) {
    // Fig. 10: device 2 joins while device 1 keeps transmitting.
    ns::mac::allocation_params alloc{
        .phy = ns::phy::deployed_params(), .skip = 2, .num_association_slots = 2};
    ns::mac::access_point ap(alloc);

    ns::device::device_params dev_params;
    dev_params.detector.rssi_noise_sigma_db = 0.0;
    dev_params.detector.rssi_step_db = 0.0;
    ns::device::backscatter_device device2(2, dev_params, 7);

    // Round 1: device 2 hears a query and requests association.
    auto intent = device2.handle_query(-30.0, std::nullopt);
    ASSERT_EQ(intent.action, ns::device::device_action::association_request);
    EXPECT_EQ(intent.association_region, ns::device::snr_region::high);

    // AP decodes the request (simulation carries the id) and assigns.
    const auto response = ap.handle_association_request(
        {.device_id = 2, .region = intent.association_region, .rx_power_dbm = -95.0});

    // Round 2: the query carries the assignment; device 2 ACKs.
    const ns::mac::query_message query = ap.build_query();
    ASSERT_TRUE(query.response.has_value());
    intent = device2.handle_query(
        -30.0, ns::device::shift_assignment{
                   .network_id = query.response->network_id,
                   .cyclic_shift = static_cast<std::uint32_t>(
                       query.response->shift_slot * alloc.skip)});
    ASSERT_EQ(intent.action, ns::device::device_action::association_ack);
    ap.handle_association_ack(2);

    // Round 3: device 2 now sends data on its assigned shift.
    intent = device2.handle_query(-30.0, std::nullopt);
    EXPECT_EQ(intent.action, ns::device::device_action::transmit_data);
    EXPECT_EQ(intent.cyclic_shift, response.shift_slot * alloc.skip);
    EXPECT_EQ(*ap.shift_of(2), intent.cyclic_shift);
}

TEST(integration, query_serialization_survives_channel_of_bits) {
    // The query's serialized bits parse back identically — devices and AP
    // agree on the wire format.
    ns::mac::query_message query;
    query.group_id = 0;
    query.response = ns::mac::association_response{.network_id = 9, .shift_slot = 31};
    const auto parsed = ns::mac::parse_query(ns::mac::serialize(query));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->response->shift_slot, 31);
}

// ----------------------------------------------- headline paper gains --

TEST(integration, fig18_linklayer_gains_in_paper_range) {
    // §4.4: NetScatter link-layer gain over LoRa backscatter without rate
    // adaptation is 61.9x (config 1) and 50.9x (config 2) at 256 devices.
    const auto frame = ns::phy::linklayer_format();
    const auto params = ns::phy::deployed_params();
    const auto lora = ns::baseline::fixed_rate_network(frame, 256);

    const auto ns1 = ns::sim::netscatter_ideal_metrics(
        frame, params, ns::sim::query_config::config1, 256);
    const auto ns2 = ns::sim::netscatter_ideal_metrics(
        frame, params, ns::sim::query_config::config2, 256);

    const double gain1 = ns1.linklayer_rate_bps / lora.linklayer_rate_bps;
    const double gain2 = ns2.linklayer_rate_bps / lora.linklayer_rate_bps;
    EXPECT_NEAR(gain1, 61.9, 12.0);
    EXPECT_NEAR(gain2, 50.9, 10.0);
    EXPECT_GT(gain1, gain2);  // config 2 pays the 1760-bit query
}

TEST(integration, fig19_latency_reductions_in_paper_range) {
    // §4.4: latency reductions of 67.0x / 55.1x over LoRa backscatter
    // without rate adaptation.
    const auto frame = ns::phy::linklayer_format();
    const auto params = ns::phy::deployed_params();
    const auto lora = ns::baseline::fixed_rate_network(frame, 256);
    const auto ns1 = ns::sim::netscatter_ideal_metrics(
        frame, params, ns::sim::query_config::config1, 256);
    const auto ns2 = ns::sim::netscatter_ideal_metrics(
        frame, params, ns::sim::query_config::config2, 256);
    EXPECT_NEAR(lora.latency_s / ns1.latency_s, 67.0, 13.0);
    EXPECT_NEAR(lora.latency_s / ns2.latency_s, 55.1, 11.0);
}

TEST(integration, fig17_phy_rate_gain_over_fixed_lora) {
    // §4.4: 26.2x PHY-rate gain over LoRa backscatter without rate
    // adaptation at 256 devices (250 kbps vs ~9.5 kbps).
    const auto frame = ns::phy::phy_format();
    const auto params = ns::phy::deployed_params();
    const auto netscatter = ns::sim::netscatter_ideal_metrics(
        frame, params, ns::sim::query_config::config1, 256);
    const auto lora = ns::baseline::fixed_rate_network(frame, 256);
    EXPECT_NEAR(netscatter.phy_rate_bps / lora.phy_rate_bps, 26.2, 5.0);
}

TEST(integration, throughput_gain_formula_2sf_over_sf) {
    // §3.1: aggregate throughput gain over LoRa is 2^SF / SF.
    const auto params = ns::phy::deployed_params();
    const double aggregate_netscatter =
        params.onoff_bitrate_bps() * static_cast<double>(params.num_bins());
    const double lora = params.lora_bitrate_bps();
    EXPECT_NEAR(aggregate_netscatter / lora, 512.0 / 9.0, 1e-6);
    // And the aggregate equals the chirp bandwidth (§3.1).
    EXPECT_NEAR(aggregate_netscatter, params.bandwidth_hz, 1e-6);
}

// -------------------------------------------- end-to-end 64-device run --

TEST(integration, deployment_of_64_devices_delivers_over_90_percent) {
    const ns::sim::deployment dep(ns::sim::deployment_params{}, 64, 11);
    ns::sim::sim_config config;
    config.rounds = 4;
    config.seed = 3;
    ns::sim::network_simulator sim(dep, config);
    const ns::sim::sim_result result = sim.run();
    EXPECT_GT(result.delivery_rate(), 0.9);
    EXPECT_LT(result.ber(), 0.02);
}

TEST(integration, power_aware_allocation_no_worse_than_agnostic) {
    const ns::sim::deployment dep(ns::sim::deployment_params{}, 96, 13);
    ns::sim::sim_config aware;
    aware.rounds = 4;
    aware.seed = 5;
    ns::sim::sim_config agnostic = aware;
    agnostic.power_aware_allocation = false;
    const auto r_aware = ns::sim::network_simulator(dep, aware).run();
    const auto r_agnostic = ns::sim::network_simulator(dep, agnostic).run();
    EXPECT_GE(r_aware.total_delivered + 3, r_agnostic.total_delivered);
}

// ------------------------------------------------ bandwidth aggregation --

TEST(integration, aggregate_band_single_fft_decodes_both_bands) {
    // §3.1: one 2*2^SF FFT demodulates devices across both sub-bands.
    ns::phy::aggregate_params agg;
    agg.chirp = ns::phy::deployed_params();
    agg.num_bands = 2;

    ns::util::rng gen(14);
    const std::vector<std::pair<std::size_t, std::uint32_t>> devices = {
        {0, 10}, {0, 300}, {1, 40}, {1, 500}};

    cvec superposed(agg.samples_per_symbol(), ns::dsp::cplx{0.0, 0.0});
    for (const auto& [band, shift] : devices) {
        const cvec chirp =
            ns::phy::make_aggregate_upchirp(agg, band, static_cast<double>(shift));
        ns::dsp::accumulate(superposed, chirp);
    }
    const auto power = ns::phy::aggregate_symbol_power_spectrum(agg, superposed);
    ASSERT_EQ(power.size(), 1024u);

    // Every device's aggregate bin towers over the median.
    std::vector<double> sorted = power;
    std::nth_element(sorted.begin(), sorted.begin() + 512, sorted.end());
    const double median = sorted[512];
    for (const auto& [band, shift] : devices) {
        EXPECT_GT(power[agg.bin_of(band, shift)], 1000.0 * (median + 1e-9))
            << "band " << band << " shift " << shift;
    }
}

TEST(integration, aggregate_bands_do_not_alias_onto_each_other) {
    ns::phy::aggregate_params agg;
    agg.chirp = ns::phy::deployed_params();
    const cvec band0 = ns::phy::make_aggregate_upchirp(agg, 0, 100.0);
    const auto power = ns::phy::aggregate_symbol_power_spectrum(agg, band0);
    // The mirror bin in band 1 must be empty.
    EXPECT_GT(power[agg.bin_of(0, 100)], 1e6 * power[agg.bin_of(1, 100)]);
}

TEST(integration, aggregate_capacity_doubles) {
    ns::phy::aggregate_params agg;
    agg.chirp = ns::phy::deployed_params();
    agg.num_bands = 2;
    EXPECT_EQ(agg.total_bins(), 1024u);
    EXPECT_NEAR(agg.sample_rate_hz(), 1e6, 1e-6);
    // Per-device bitrate is unchanged: symbol duration is still 2^SF/BW.
    EXPECT_EQ(agg.samples_per_symbol(), 1024u);
}

}  // namespace
