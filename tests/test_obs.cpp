// Observability layer (src/netscatter/obs): deterministic histogram
// bucketing, name-wise snapshot merging that is bit-identical between
// serial and parallel replica execution, well-formed span trees from
// nested RAII probes, valid Chrome/Perfetto trace JSON, and the
// NS_OBS=OFF no-op contract. The same binary exercises both sides of
// the compile-time switch: the CI NS_OBS=OFF leg runs these tests with
// every instrument compiled out.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "netscatter/engine/mc_runner.hpp"
#include "netscatter/obs/metrics.hpp"
#include "netscatter/obs/perf_counters.hpp"
#include "netscatter/obs/trace.hpp"

namespace {

using ns::obs::compiled_in;
using ns::obs::histogram;
using ns::obs::metrics_registry;
using ns::obs::metrics_snapshot;

// -------------------------------------------------- timing predicate --

TEST(timing_name, classifies_units_and_wallclock) {
    EXPECT_TRUE(ns::obs::is_timing_name("round.synth_s"));
    EXPECT_TRUE(ns::obs::is_timing_name("decode_ms"));
    EXPECT_TRUE(ns::obs::is_timing_name("latency_us"));
    EXPECT_TRUE(ns::obs::is_timing_name("jitter_ns"));
    EXPECT_TRUE(ns::obs::is_timing_name("total_seconds"));
    EXPECT_TRUE(ns::obs::is_timing_name("wall_clock_s"));
    EXPECT_TRUE(ns::obs::is_timing_name("replica.wall_s"));

    EXPECT_FALSE(ns::obs::is_timing_name("sim.rounds"));
    EXPECT_FALSE(ns::obs::is_timing_name("fast_path_rounds"));
    EXPECT_FALSE(ns::obs::is_timing_name("alloc.steady_count"));
    EXPECT_FALSE(ns::obs::is_timing_name("round.allocs"));
    // "_s" must be a suffix, not a substring.
    EXPECT_FALSE(ns::obs::is_timing_name("phy.kernels_summed"));
}

// ---------------------------------------------------- histogram math --

TEST(histogram_buckets, integer_log2_index_is_exact) {
    // Bucket i spans [2^i, 2^(i+1)) nanoseconds; the index comes from
    // std::bit_width, so exact powers of two must sit on the boundary.
    EXPECT_EQ(histogram::bucket_index(1e-9), 0u);
    EXPECT_EQ(histogram::bucket_index(1.99e-9), 0u);
    EXPECT_EQ(histogram::bucket_index(2e-9), 1u);
    EXPECT_EQ(histogram::bucket_index(1024e-9), 10u);
    EXPECT_EQ(histogram::bucket_index(1.0), 29u);  // 1 s = 1e9 ns, 2^29..2^30
    // Degenerate inputs: zero, negative and sub-nanosecond values land
    // in bucket 0; absurdly large values clamp into the last bucket.
    EXPECT_EQ(histogram::bucket_index(0.0), 0u);
    EXPECT_EQ(histogram::bucket_index(-3.0), 0u);
    EXPECT_EQ(histogram::bucket_index(0.4e-9), 0u);
    EXPECT_EQ(histogram::bucket_index(1e30), histogram::num_buckets - 1);

    // bucket_lower_bound_s is the inverse on bucket boundaries.
    for (std::size_t i : {0u, 1u, 10u, 29u, 40u}) {
        EXPECT_EQ(histogram::bucket_index(histogram::bucket_lower_bound_s(i)), i);
    }
}

TEST(histogram_buckets, record_tracks_count_sum_min_max) {
    histogram h;
    h.record(3e-9);
    h.record(1e-9);
    h.record(8e-9);
    if (compiled_in()) {
        EXPECT_EQ(h.count(), 3u);
        EXPECT_DOUBLE_EQ(h.sum(), 12e-9);
        EXPECT_DOUBLE_EQ(h.min(), 1e-9);
        EXPECT_DOUBLE_EQ(h.max(), 8e-9);
    } else {
        // NS_OBS=OFF: record() is a stateless no-op.
        EXPECT_EQ(h.count(), 0u);
        EXPECT_DOUBLE_EQ(h.sum(), 0.0);
    }
}

TEST(histogram_buckets, percentiles_are_monotonic_and_clamped) {
    if (!compiled_in()) GTEST_SKIP() << "built with NS_OBS=OFF";
    metrics_registry reg;
    histogram* h = reg.get_histogram("t_s");
    for (int i = 1; i <= 1000; ++i) h->record(static_cast<double>(i) * 1e-9);
    const metrics_snapshot snap = reg.snapshot();
    const auto* sample = snap.find_histogram("t_s");
    ASSERT_NE(sample, nullptr);
    const double p50 = sample->percentile(50.0);
    const double p95 = sample->percentile(95.0);
    const double p99 = sample->percentile(99.0);
    // Log2 buckets: estimates are good to a factor of sqrt(2) and are
    // clamped to the observed [min, max].
    EXPECT_GE(p50, sample->min);
    EXPECT_LE(p99, sample->max);
    EXPECT_LE(p50, p95);
    EXPECT_LE(p95, p99);
    EXPECT_NEAR(p50 / 500e-9, 1.0, 0.5);
}

// ------------------------------------------------------- merge rules --

metrics_snapshot make_snapshot(std::uint64_t base) {
    metrics_registry reg;
    reg.get_counter("events")->add(base);
    reg.get_counter("shared")->add(1);
    reg.get_gauge("depth")->set(static_cast<double>(base));
    histogram* h = reg.get_histogram("lat_s");
    h->record(static_cast<double>(base) * 1e-9);
    h->record(static_cast<double>(2 * base) * 1e-9);
    return reg.snapshot();
}

TEST(snapshot_merge, name_wise_union_sums_counters_and_buckets) {
    if (!compiled_in()) GTEST_SKIP() << "built with NS_OBS=OFF";
    metrics_snapshot a = make_snapshot(4);
    const metrics_snapshot b = make_snapshot(32);
    a.merge(b);

    EXPECT_EQ(a.counter_value("events"), 36u);
    EXPECT_EQ(a.counter_value("shared"), 2u);
    const auto* g = a.find_gauge("depth");
    ASSERT_NE(g, nullptr);
    EXPECT_DOUBLE_EQ(g->last, 32.0);  // merge-order last
    EXPECT_DOUBLE_EQ(g->max, 32.0);
    const auto* h = a.find_histogram("lat_s");
    ASSERT_NE(h, nullptr);
    EXPECT_EQ(h->count, 4u);
    EXPECT_DOUBLE_EQ(h->min, 4e-9);
    EXPECT_DOUBLE_EQ(h->max, 64e-9);
    EXPECT_EQ(h->buckets[histogram::bucket_index(4e-9)], 1u);
    EXPECT_EQ(h->buckets[histogram::bucket_index(32e-9)], 1u);

    // Disjoint names union in sorted order.
    metrics_registry extra;
    extra.get_counter("aaa_first")->add(7);
    a.merge(extra.snapshot());
    ASSERT_FALSE(a.counters.empty());
    EXPECT_EQ(a.counters.front().name, "aaa_first");
    EXPECT_TRUE(std::is_sorted(
        a.counters.begin(), a.counters.end(),
        [](const auto& x, const auto& y) { return x.name < y.name; }));
}

bool snapshots_identical(const metrics_snapshot& a, const metrics_snapshot& b) {
    if (a.counters.size() != b.counters.size() ||
        a.gauges.size() != b.gauges.size() ||
        a.histograms.size() != b.histograms.size()) {
        return false;
    }
    for (std::size_t i = 0; i < a.counters.size(); ++i) {
        if (a.counters[i].name != b.counters[i].name ||
            a.counters[i].value != b.counters[i].value) {
            return false;
        }
    }
    for (std::size_t i = 0; i < a.gauges.size(); ++i) {
        if (a.gauges[i].name != b.gauges[i].name ||
            a.gauges[i].last != b.gauges[i].last ||  // bit-exact on purpose
            a.gauges[i].max != b.gauges[i].max) {
            return false;
        }
    }
    for (std::size_t i = 0; i < a.histograms.size(); ++i) {
        const auto& x = a.histograms[i];
        const auto& y = b.histograms[i];
        if (x.name != y.name || x.count != y.count || x.sum != y.sum ||
            x.min != y.min || x.max != y.max || x.buckets != y.buckets) {
            return false;
        }
    }
    return true;
}

TEST(snapshot_merge, serial_and_parallel_replica_merges_are_bit_identical) {
    if (!compiled_in()) GTEST_SKIP() << "built with NS_OBS=OFF";
    // The determinism contract end to end: N replica registries built as
    // pure functions of the replica index, executed through the
    // mc_runner serially and on 8 threads, merged in task order. The
    // merged snapshots must match bit for bit — including histogram
    // `sum`, a double accumulated in merge order.
    constexpr std::size_t replicas = 24;
    const auto replica_snapshot = [](std::size_t r) {
        metrics_registry reg;
        reg.get_counter("rounds")->add(r + 1);
        reg.get_gauge("depth")->set(static_cast<double>(r % 5));
        histogram* h = reg.get_histogram("lat_s");
        for (std::size_t i = 0; i <= r; ++i) {
            // Non-dyadic values so cross-replica sum order matters.
            h->record(static_cast<double>(i * 13 + r) * 1.7e-9);
        }
        return reg.snapshot();
    };

    const auto run_merged = [&](bool parallel, std::size_t threads) {
        const ns::engine::mc_runner runner(
            {.rounds_per_task = 0, .num_threads = threads, .parallel = parallel});
        std::vector<metrics_snapshot> parts =
            runner.run_indexed(replicas, replica_snapshot);
        metrics_snapshot merged;
        for (const metrics_snapshot& part : parts) merged.merge(part);
        return merged;
    };

    const metrics_snapshot serial = run_merged(false, 1);
    const metrics_snapshot parallel = run_merged(true, 8);
    EXPECT_TRUE(snapshots_identical(serial, parallel));
    EXPECT_EQ(serial.counter_value("rounds"),
              replicas * (replicas + 1) / 2);
}

// ---------------------------------------------------------- tracing --

TEST(trace_spans, nested_probes_form_a_well_formed_span_tree) {
    if (!compiled_in()) GTEST_SKIP() << "built with NS_OBS=OFF";
    ns::obs::trace_buffer buf;
    buf.arm(64, 3);
    {
        ns::obs::trace_span outer("round", &buf, nullptr, 0);
        {
            ns::obs::trace_span mid("synth", &buf, nullptr, 0);
            ns::obs::trace_span inner("kernel", &buf, nullptr, 0);
        }
        ns::obs::trace_span sibling("decode", &buf, nullptr, 0);
    }
    const auto events = buf.events();
    ASSERT_EQ(events.size(), 4u);
    // RAII order: children are appended before their parents.
    EXPECT_STREQ(events[0].name, "kernel");
    EXPECT_STREQ(events[1].name, "synth");
    EXPECT_STREQ(events[2].name, "decode");
    EXPECT_STREQ(events[3].name, "round");

    const auto contains = [](const ns::obs::trace_event& parent,
                             const ns::obs::trace_event& child) {
        return child.ts_ns >= parent.ts_ns &&
               child.ts_ns + child.dur_ns <= parent.ts_ns + parent.dur_ns;
    };
    const auto& round = events[3];
    EXPECT_TRUE(contains(round, events[0]));
    EXPECT_TRUE(contains(round, events[1]));
    EXPECT_TRUE(contains(round, events[2]));
    EXPECT_TRUE(contains(events[1], events[0]));  // synth contains kernel
    // Siblings are disjoint in time: synth closed before decode opened.
    EXPECT_LE(events[1].ts_ns + events[1].dur_ns, events[2].ts_ns);
    for (const auto& event : events) EXPECT_EQ(event.track, 3u);
}

TEST(trace_spans, ring_is_bounded_and_counts_drops) {
    ns::obs::trace_buffer buf;
    buf.arm(2, 0);
    for (int i = 0; i < 5; ++i) buf.append("e", 10 * i, 1);
    if (compiled_in()) {
        EXPECT_EQ(buf.events().size(), 2u);
        EXPECT_EQ(buf.dropped(), 3u);
    } else {
        // arm() refuses when compiled out — append stores nothing.
        EXPECT_FALSE(buf.armed());
        EXPECT_EQ(buf.events().size(), 0u);
        EXPECT_EQ(buf.dropped(), 0u);
    }
}

TEST(trace_export, chrome_json_is_valid_and_timestamps_are_monotonic) {
    if (!compiled_in()) GTEST_SKIP() << "built with NS_OBS=OFF";
    ns::obs::trace_buffer buf;
    buf.arm(16, 1);
    std::uint64_t prev_ts = 0;
    for (int i = 0; i < 4; ++i) {
        ns::obs::trace_span span("round", &buf, nullptr, i);
    }
    const auto events = buf.events();
    ASSERT_EQ(events.size(), 4u);
    for (const auto& event : events) {
        EXPECT_GE(event.ts_ns, prev_ts);  // sequential spans: monotonic
        prev_ts = event.ts_ns;
    }

    std::ostringstream out;
    ns::obs::write_chrome_trace(events, out);
    const std::string json = out.str();
    // Structural checks (CI additionally runs the emitted files through
    // a real JSON parser): one complete-event record per span, balanced
    // braces/brackets, no trailing comma before a closing bracket.
    EXPECT_EQ(json.find('{'), 0u);
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
    std::size_t complete_events = 0;
    for (std::size_t pos = json.find("\"ph\""); pos != std::string::npos;
         pos = json.find("\"ph\"", pos + 1)) {
        ++complete_events;
    }
    EXPECT_EQ(complete_events, events.size());
    EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
              std::count(json.begin(), json.end(), '}'));
    EXPECT_EQ(std::count(json.begin(), json.end(), '['),
              std::count(json.begin(), json.end(), ']'));
    EXPECT_EQ(json.find(",]"), std::string::npos);
    EXPECT_EQ(json.find(",}"), std::string::npos);
}

// ------------------------------------------------- NS_OBS=OFF no-ops --

TEST(obs_disabled, instruments_are_inert_when_compiled_out) {
    // Meaningful on the NS_OBS=OFF CI leg; on regular builds it checks
    // the inverse (instruments actually store).
    ns::obs::counter c;
    c.add(5);
    ns::obs::gauge g;
    g.set(2.0);
    metrics_registry reg;
    reg.get_counter("x")->add(3);
    const ns::obs::alloc_counters before = ns::obs::thread_allocations();
    ns::obs::record_allocation(128);
    const ns::obs::alloc_counters after = ns::obs::thread_allocations();

    if (compiled_in()) {
        EXPECT_EQ(c.value(), 5u);
        EXPECT_DOUBLE_EQ(g.last(), 2.0);
        EXPECT_EQ(reg.snapshot().counter_value("x"), 3u);
        EXPECT_EQ(after.count, before.count + 1);
        EXPECT_EQ(after.bytes, before.bytes + 128);
    } else {
        EXPECT_EQ(c.value(), 0u);
        EXPECT_DOUBLE_EQ(g.last(), 0.0);
        EXPECT_TRUE(reg.snapshot().empty());
        EXPECT_EQ(after.count, before.count);
        EXPECT_EQ(after.bytes, before.bytes);
        // Timers and spans never read the clock when disabled; they must
        // still be constructible so instrumented code compiles verbatim.
        histogram h;
        ns::obs::scoped_timer timer(&h);
        ns::obs::trace_span span("x", nullptr);
        EXPECT_EQ(h.count(), 0u);
    }
}

// ------------------------------------------- perf counter fallback --

TEST(perf_counters, host_metric_predicate_covers_timing_and_perf) {
    EXPECT_TRUE(ns::obs::is_host_metric_name("perf.plan.cycles"));
    EXPECT_TRUE(ns::obs::is_host_metric_name("perf.available"));
    EXPECT_TRUE(ns::obs::is_host_metric_name("round.synth_s"));  // timing
    EXPECT_FALSE(ns::obs::is_host_metric_name("phy.kernels_summed"));
    EXPECT_FALSE(ns::obs::is_host_metric_name("phy.kernel_window_elems"));
    EXPECT_FALSE(ns::obs::is_host_metric_name("perfx"));  // prefix, not "perf."
}

TEST(perf_counters, derived_ratios_guard_division_by_zero) {
    EXPECT_DOUBLE_EQ(ns::obs::perf_ipc(100, 0), 0.0);
    EXPECT_DOUBLE_EQ(ns::obs::perf_ipc(300, 100), 3.0);
    EXPECT_DOUBLE_EQ(ns::obs::perf_miss_rate(10, 0), 0.0);
    EXPECT_DOUBLE_EQ(ns::obs::perf_miss_rate(25, 100), 0.25);
}

TEST(perf_counters, default_group_is_unavailable_and_reads_zero) {
    // The degradation contract: an unopened group is inert. read() and
    // close() never throw, and every reading is zero.
    ns::obs::perf_counter_group group;
    EXPECT_FALSE(group.available());
    const ns::obs::perf_readings r = group.read();
    EXPECT_EQ(r.cycles, 0u);
    EXPECT_EQ(r.instructions, 0u);
    EXPECT_EQ(r.llc_loads, 0u);
    EXPECT_EQ(r.llc_misses, 0u);
    EXPECT_EQ(r.branch_misses, 0u);
    group.close();  // double-close of a never-opened group is safe
    EXPECT_FALSE(group.available());
}

TEST(perf_counters, ns_perf_disable_forces_the_fallback_path) {
    // NS_PERF_DISABLE makes the "perf_event_open denied" path testable
    // on hosts where the syscall would succeed.
    ASSERT_EQ(setenv("NS_PERF_DISABLE", "1", 1), 0);
    ns::obs::perf_counter_group group;
    EXPECT_FALSE(group.open());
    EXPECT_FALSE(group.available());
    const ns::obs::perf_readings r = group.read();
    EXPECT_EQ(r.cycles, 0u);
    EXPECT_EQ(r.instructions, 0u);
    group.close();
    unsetenv("NS_PERF_DISABLE");
}

TEST(perf_counters, open_contract_matches_availability) {
    // open() may succeed or fail depending on the host
    // (perf_event_paranoid, seccomp, non-Linux); both outcomes must be
    // internally consistent and throw-free.
    ns::obs::perf_counter_group group;
    const bool opened = group.open();
    EXPECT_EQ(opened, group.available());
    if (!compiled_in()) {
        EXPECT_FALSE(opened);  // NS_OBS=OFF: empty inline, always false
    }
    if (opened) {
        // Burn some user-space cycles; the leader must observe them.
        volatile double sink = 1.0;
        for (int i = 0; i < 200000; ++i) sink = sink * 1.000001 + 1e-9;
        const ns::obs::perf_readings r = group.read();
        EXPECT_GT(r.cycles, 0u);
        EXPECT_GT(r.instructions, 0u);
    } else {
        const ns::obs::perf_readings r = group.read();
        EXPECT_EQ(r.cycles, 0u);
    }
    group.close();
    EXPECT_FALSE(group.available());
}

TEST(perf_counters, scope_is_inert_without_group_or_destination) {
    metrics_registry reg;
    const auto dest =
        ns::obs::perf_phase_counters::from_registry(reg, "test_phase");
    {
        // Null group: the scope arms nothing.
        ns::obs::perf_scope scope(nullptr, &dest);
    }
    {
        // Unavailable group: same.
        ns::obs::perf_counter_group group;
        ns::obs::perf_scope scope(&group, &dest);
    }
    {
        // Unwired destination: constructible, no stores.
        ns::obs::perf_phase_counters unwired;
        ns::obs::perf_scope scope(nullptr, &unwired);
        ns::obs::perf_scope null_dest(nullptr, nullptr);
    }
    const metrics_snapshot snap = reg.snapshot();
    if (compiled_in()) {
        // from_registry pre-creates the counters; they must all read 0.
        EXPECT_TRUE(dest.wired());
        EXPECT_EQ(snap.counter_value("perf.test_phase.cycles"), 0u);
        EXPECT_EQ(snap.counter_value("perf.test_phase.instructions"), 0u);
    } else {
        // NS_OBS=OFF: from_registry is an empty inline — nothing named,
        // nothing stored.
        EXPECT_FALSE(dest.wired());
        EXPECT_TRUE(snap.empty());
    }
}

TEST(perf_counters, process_usage_reads_rusage_in_both_build_modes) {
    // getrusage is host data, available even under NS_OBS=OFF (it feeds
    // the --metrics process section only). On Linux a live process has
    // a nonzero peak RSS; elsewhere the struct is all zeros.
    const ns::obs::process_usage usage = ns::obs::current_process_usage();
#if defined(__linux__)
    EXPECT_GT(usage.peak_rss_bytes, 0u);
    EXPECT_GT(usage.minor_page_faults, 0u);
#else
    (void)usage;
#endif
}

TEST(obs_disabled, snapshot_record_value_roundtrips) {
    metrics_snapshot snap;
    snap.record_value("replica.wall_s", 0.25);
    if (compiled_in()) {
        const auto* h = snap.find_histogram("replica.wall_s");
        ASSERT_NE(h, nullptr);
        EXPECT_EQ(h->count, 1u);
        EXPECT_DOUBLE_EQ(h->sum, 0.25);
    }
    // Under NS_OBS=OFF record_value may store or not — the only contract
    // is that it is safe to call; merged results are never emitted
    // because every producer is compiled out.
}

}  // namespace
