// Tests for the bench JSON writer: non-finite numbers must degrade to
// null (bare nan/inf tokens are not JSON) and names/keys/values must be
// escaped, so the BENCH_*.json artifacts always parse.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>

#include "bench/bench_report.hpp"

namespace {

std::string slurp(const std::string& path) {
    std::ifstream file(path);
    std::ostringstream out;
    out << file.rdbuf();
    return out.str();
}

TEST(bench_report, non_finite_numbers_emit_null) {
    bench::bench_report report("nonfinite");
    report.set_scalar("empty_mean", std::numeric_limits<double>::quiet_NaN());
    report.set_scalar("overflowed", std::numeric_limits<double>::infinity());
    report.set_scalar("negative", -std::numeric_limits<double>::infinity());
    report.set_scalar("fine", 1.5);
    report.add_point({{"value", std::numeric_limits<double>::quiet_NaN()},
                      {"ok", 2.0}});
    const std::string path = "test_bench_report_nonfinite.json";
    report.write(path);
    const std::string json = slurp(path);
    std::remove(path.c_str());

    EXPECT_NE(json.find("\"empty_mean\": null"), std::string::npos);
    EXPECT_NE(json.find("\"overflowed\": null"), std::string::npos);
    EXPECT_NE(json.find("\"negative\": null"), std::string::npos);
    EXPECT_NE(json.find("\"fine\": 1.5"), std::string::npos);
    EXPECT_NE(json.find("\"value\": null"), std::string::npos);
    EXPECT_EQ(json.find("nan"), std::string::npos);
    EXPECT_EQ(json.find("inf"), std::string::npos);
}

TEST(bench_report, names_keys_and_values_are_escaped) {
    bench::bench_report report("we\"ird\\name");
    report.set_scalar("ke\"y", 1.0);
    report.set_scalar("label", "va\\lue\nwith newline");
    report.add_point({{"po\"int_key", "str\"val"}});
    const std::string path = "test_bench_report_escape.json";
    report.write(path);
    const std::string json = slurp(path);
    std::remove(path.c_str());

    EXPECT_NE(json.find("\"bench\": \"we\\\"ird\\\\name\""), std::string::npos);
    EXPECT_NE(json.find("\"ke\\\"y\": 1"), std::string::npos);
    EXPECT_NE(json.find("\"va\\\\lue\\nwith newline\""), std::string::npos);
    EXPECT_NE(json.find("\"po\\\"int_key\": \"str\\\"val\""), std::string::npos);
}

TEST(bench_report, string_scalars_and_custom_path) {
    bench::bench_report report("strings");
    report.set_scalar("scenario", "office-256");
    report.add_point({{"name", "point-a"}, {"x", 3.0}});
    const std::string path = "test_bench_report_strings.json";
    report.write(path);
    const std::string json = slurp(path);
    std::remove(path.c_str());

    EXPECT_NE(json.find("\"scenario\": \"office-256\""), std::string::npos);
    EXPECT_NE(json.find("\"name\": \"point-a\", \"x\": 3"), std::string::npos);
}

TEST(bench_report, json_escape_handles_control_characters) {
    EXPECT_EQ(bench::json_escape("plain"), "plain");
    EXPECT_EQ(bench::json_escape("a\"b"), "a\\\"b");
    EXPECT_EQ(bench::json_escape("a\\b"), "a\\\\b");
    EXPECT_EQ(bench::json_escape("a\tb\n"), "a\\tb\\n");
    EXPECT_EQ(bench::json_escape(std::string("a\x01") + "b"), "a\\u0001b");
}

}  // namespace
