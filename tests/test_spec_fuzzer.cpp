// Randomized scenario_spec fuzzer (seeded, deterministic).
//
// Generates small random-but-valid specs across the whole declarative
// surface — geometry presets, every traffic kind, both association
// modes, mobility, interference, grouping, and the control-plane fault
// processes — and checks the two load-bearing contracts on each:
// validate() accepts what the generator claims is valid, and the run is
// bit-identical serial vs 8 worker threads. The generator is a pure
// function of its seed, so a failure reproduces from the test log.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "netscatter/scenario/scenario_runner.hpp"
#include "netscatter/scenario/scenario_spec.hpp"
#include "netscatter/spec/spec_codec.hpp"
#include "netscatter/util/rng.hpp"

namespace {

using namespace ns::scenario;

/// Uniform pick from a small enum domain.
template <typename T>
T pick(ns::util::rng& rng, std::initializer_list<T> values) {
    const auto index = static_cast<std::size_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(values.size()) - 1));
    return *(values.begin() + static_cast<std::ptrdiff_t>(index));
}

/// One random valid spec, small enough that sixteen runs stay cheap.
scenario_spec random_spec(std::uint64_t seed) {
    ns::util::rng rng(seed);
    scenario_spec spec;
    spec.name = "fuzz-" + std::to_string(seed);
    spec.description = "randomized spec";

    spec.geometry.preset =
        pick(rng, {geometry_preset::office, geometry_preset::warehouse_aisle,
                   geometry_preset::open_field});
    spec.geometry.num_devices =
        static_cast<std::size_t>(rng.uniform_int(8, 32));

    spec.traffic.kind =
        pick(rng, {traffic_kind::saturated, traffic_kind::periodic,
                   traffic_kind::poisson, traffic_kind::bursty});
    spec.traffic.duty_cycle = rng.uniform(0.25, 1.0);
    spec.traffic.period_rounds = static_cast<std::size_t>(rng.uniform_int(1, 4));
    spec.traffic.arrivals_per_round = rng.uniform(0.1, 1.5);
    spec.traffic.burst_probability = rng.uniform(0.0, 0.5);
    spec.traffic.burst_length = static_cast<std::size_t>(rng.uniform_int(1, 6));

    if (rng.bernoulli(0.7)) {
        spec.churn.join_rate_per_round = rng.uniform(0.0, 2.0);
        spec.churn.leave_rate_per_round = rng.uniform(0.0, 2.0);
        spec.churn.initial_active = static_cast<std::size_t>(
            rng.uniform_int(2, static_cast<std::int64_t>(
                                   spec.geometry.num_devices)));
        spec.churn.association = pick(rng, {association_mode::bounded_queue,
                                            association_mode::slotted_aloha});
        spec.churn.aloha_initial_window =
            static_cast<std::uint32_t>(rng.uniform_int(1, 4));
        spec.churn.aloha_max_window = spec.churn.aloha_initial_window *
                                      static_cast<std::uint32_t>(
                                          rng.uniform_int(1, 16));
    }

    if (rng.bernoulli(0.4)) {
        spec.mobility.mobile_fraction = rng.uniform(0.0, 1.0);
        spec.mobility.speed_mps = rng.uniform(0.5, 3.0);
    }

    spec.interference.kind =
        pick(rng, {interference_kind::none, interference_kind::periodic_tone,
                   interference_kind::bursty_tone, interference_kind::lora_frame});
    spec.interference.snr_db = rng.uniform(5.0, 25.0);
    spec.interference.period_rounds =
        static_cast<std::size_t>(rng.uniform_int(1, 4));
    spec.interference.burst_probability = rng.uniform(0.0, 0.6);

    if (rng.bernoulli(0.4)) {
        spec.sim.grouping.enabled = true;
        spec.sim.grouping.group_capacity =
            static_cast<std::size_t>(rng.uniform_int(4, 16));
        spec.sim.grouping.policy =
            pick(rng, {ns::sim::regroup_policy::none,
                       ns::sim::regroup_policy::periodic,
                       ns::sim::regroup_policy::load_triggered});
        spec.sim.grouping.regroup_period_rounds =
            static_cast<std::size_t>(rng.uniform_int(1, 4));
        spec.sim.grouping.load_trigger_misfits =
            static_cast<std::size_t>(rng.uniform_int(1, 4));
    }

    // Fault processes in every draw domain validate() accepts, including
    // the all-zero (disabled) corner.
    if (rng.bernoulli(0.75)) {
        spec.faults.query_loss = rng.uniform(0.0, 0.5);
        spec.faults.query_loss_rssi_slope = rng.uniform(0.0, 0.01);
        spec.faults.ack_loss = rng.uniform(0.0, 0.5);
        spec.faults.reboot_rate_per_round = rng.uniform(0.0, 1.0);
        spec.faults.blackout_probability = rng.uniform(0.0, 0.3);
        spec.faults.blackout_rounds =
            static_cast<std::size_t>(rng.uniform_int(1, 3));
        spec.faults.lease_rounds =
            static_cast<std::size_t>(rng.uniform_int(0, 6));
        spec.faults.missed_query_limit =
            static_cast<std::size_t>(rng.uniform_int(0, 4));
        spec.faults.ack_retry_limit =
            static_cast<std::size_t>(rng.uniform_int(1, 6));
    }

    spec.sim.zero_padding = 4;
    spec.sim.rounds = static_cast<std::size_t>(rng.uniform_int(2, 3));
    spec.sim.seed = rng();
    spec.replicas = 2;
    return spec;
}

/// Comparable digest of everything determinism guarantees, fault
/// observables included.
std::string digest(const scenario_result& result) {
    std::ostringstream out;
    out.precision(17);
    const auto& s = result.sim;
    out << s.total_transmitting << ' ' << s.total_delivered << ' '
        << s.total_bit_errors << ' ' << s.total_bits << ' ' << s.total_skipped
        << ' ' << s.total_idle << ' ' << s.total_joins << ' ' << s.total_leaves
        << ' ' << s.total_reassociations << ' ' << s.total_query_losses << ' '
        << s.total_ack_losses << ' ' << s.total_ack_timeouts << ' '
        << s.total_reboots << ' ' << s.total_down_events << ' '
        << s.total_lease_evictions << ' ' << s.total_desyncs << ' '
        << s.total_resyncs << ' ' << s.total_recoveries << ' '
        << s.total_orphan_tx << ' ' << s.total_orphan_collisions << ' '
        << s.total_blackout_rounds << ' ' << s.devices_down_at_end << '\n';
    for (const auto& round : s.rounds) {
        out << round.active << ',' << round.transmitting << ','
            << round.delivered << ',' << round.bit_errors << ','
            << round.joins << ',' << round.leaves << ','
            << round.query_losses << ',' << round.down_events << ','
            << round.recoveries << ',' << round.blackout << ';';
    }
    out << '\n' << result.stats.join_requests << ' ' << result.stats.offered
        << ' ' << result.stats.gated;
    return out.str();
}

TEST(spec_fuzzer, random_valid_specs_validate_and_run_deterministically) {
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
        const scenario_spec spec = random_spec(seed);
        ASSERT_NO_THROW(spec.sim.validate()) << "seed " << seed;
        ASSERT_NO_THROW(spec.faults.validate()) << "seed " << seed;

        const auto serial =
            run_scenario(spec, {.num_threads = 1, .parallel = false});
        const auto threaded =
            run_scenario(spec, {.num_threads = 8, .parallel = true});
        EXPECT_EQ(digest(serial), digest(threaded)) << "seed " << seed;

        // Conservation invariant on every fuzzed run: each down episode
        // either recovered or is still open at the end.
        EXPECT_EQ(serial.sim.total_down_events,
                  serial.sim.total_recoveries + serial.sim.devices_down_at_end)
            << "seed " << seed;
    }
}

/// A random spec across the ENTIRE declarative surface — every field
/// the codec serializes, optionals randomly present or absent — for the
/// serialize→parse→serialize fixed-point property. These specs never
/// run (some draws would be absurdly slow); they only round-trip.
scenario_spec random_full_spec(std::uint64_t seed) {
    ns::util::rng rng(seed);
    scenario_spec spec = random_spec(seed);  // the runnable core surface
    spec.description = "full surface \"quoted\"\ttab seed " +
                       std::to_string(seed);

    // Geometry optionals, each present ~half the time.
    if (rng.bernoulli(0.5)) spec.geometry.floor_width_m = rng.uniform(10.0, 80.0);
    if (rng.bernoulli(0.5)) spec.geometry.floor_depth_m = rng.uniform(10.0, 80.0);
    if (rng.bernoulli(0.5)) {
        spec.geometry.rooms_x = static_cast<std::size_t>(rng.uniform_int(1, 6));
    }
    if (rng.bernoulli(0.5)) {
        spec.geometry.rooms_y = static_cast<std::size_t>(rng.uniform_int(1, 6));
    }
    if (rng.bernoulli(0.5)) spec.geometry.ap_tx_dbm = rng.uniform(0.0, 30.0);
    if (rng.bernoulli(0.5)) {
        spec.geometry.pathloss_exponent = rng.uniform(1.8, 4.0);
    }
    if (rng.bernoulli(0.5)) spec.geometry.wall_loss_db = rng.uniform(0.0, 12.0);
    if (rng.bernoulli(0.5)) spec.geometry.min_distance_m = rng.uniform(0.5, 3.0);
    if (rng.bernoulli(0.5)) {
        spec.geometry.shadowing_sigma_db = rng.uniform(0.0, 8.0);
    }

    spec.churn.association_grants_per_round =
        static_cast<std::size_t>(rng.uniform_int(1, 3));
    spec.mobility.round_period_s = rng.uniform(0.01, 0.2);
    spec.mobility.carrier_hz = rng.uniform(800e6, 950e6);
    spec.interference.tone_hz = rng.uniform(-200e3, 200e3);

    if (rng.bernoulli(0.5)) {
        spec.cochannel.enabled = true;
        spec.cochannel.network_id =
            static_cast<std::uint32_t>(rng.uniform_int(1, 7));
        spec.cochannel.num_devices =
            static_cast<std::size_t>(rng.uniform_int(8, 64));
        spec.cochannel.duty_cycle = rng.uniform(0.1, 1.0);
        spec.cochannel.group_capacity =
            static_cast<std::size_t>(rng.uniform_int(8, 256));
        spec.cochannel.min_snr_db = rng.uniform(-10.0, 0.0);
        spec.cochannel.max_snr_db =
            spec.cochannel.min_snr_db + rng.uniform(0.0, 15.0);
        spec.cochannel.max_round_offset_s = rng.uniform(0.0, 1e-4);
        spec.cochannel.carrier_offset_hz = rng.uniform(0.0, 400.0);
    }

    spec.sim.phy.bandwidth_hz = rng.uniform(125e3, 500e3);
    spec.sim.phy.spreading_factor =
        static_cast<std::size_t>(rng.uniform_int(7, 12));
    spec.sim.frame.preamble_symbols =
        static_cast<std::size_t>(rng.uniform_int(1, 8));
    spec.sim.frame.payload_bits =
        static_cast<std::size_t>(rng.uniform_int(8, 256));
    spec.sim.frame.crc_bits = static_cast<std::size_t>(rng.uniform_int(0, 16));
    spec.sim.skip = static_cast<std::size_t>(rng.uniform_int(1, 4));
    spec.sim.detection_factor = rng.uniform(1.0, 4.0);
    spec.sim.power_aware_allocation = rng.bernoulli(0.5);
    spec.sim.power_adaptation = rng.bernoulli(0.5);
    spec.sim.model_timing_jitter = rng.bernoulli(0.5);
    spec.sim.model_cfo = rng.bernoulli(0.5);
    spec.sim.fidelity =
        pick(rng, {ns::sim::phy_fidelity::sample, ns::sim::phy_fidelity::symbol,
                   ns::sim::phy_fidelity::automatic});
    spec.sim.symbol_kernel_radius_bins =
        static_cast<std::size_t>(rng.uniform_int(1, 6));
    spec.sim.model_multipath = rng.bernoulli(0.5);
    spec.sim.multipath.delay_spread_s = rng.uniform(1e-7, 5e-6);
    spec.sim.multipath.num_taps =
        static_cast<std::size_t>(rng.uniform_int(0, 8));
    spec.sim.multipath.rician_k_db = rng.uniform(-5.0, 15.0);
    spec.sim.multipath_rho = rng.uniform(0.0, 0.99);
    spec.sim.network_id = static_cast<std::uint32_t>(rng.uniform_int(0, 7));
    spec.sim.fading_sigma_db = rng.uniform(0.0, 6.0);
    spec.sim.fading_rho = rng.uniform(0.0, 0.99);
    spec.sim.intra_round_threads =
        static_cast<std::size_t>(rng.uniform_int(1, 4));
    spec.sim.delay_model.mean_us = rng.uniform(0.0, 10.0);
    spec.sim.delay_model.sigma_us = rng.uniform(0.0, 3.0);
    spec.sim.delay_model.max_us = rng.uniform(0.0, 30.0);
    spec.sim.crystal.tolerance_ppm = rng.uniform(0.0, 40.0);
    spec.sim.crystal.operating_frequency_hz = rng.uniform(800e6, 950e6);
    spec.sim.crystal.drift_sigma_hz = rng.uniform(0.0, 5.0);
    spec.sim.obs.metrics = rng.bernoulli(0.5);
    spec.sim.obs.trace_max_events =
        static_cast<std::size_t>(rng.uniform_int(1, 1 << 16));
    spec.sim.obs.alloc_warmup_rounds =
        static_cast<std::size_t>(rng.uniform_int(0, 4));
    if (rng.bernoulli(0.3)) {
        spec.churn.initial_active = static_cast<std::size_t>(-1);  // "all"
    }
    return spec;
}

TEST(spec_fuzzer, serialize_parse_serialize_is_a_fixed_point_on_random_specs) {
    for (std::uint64_t seed = 1; seed <= 64; ++seed) {
        const scenario_spec spec = random_full_spec(seed);
        const std::string once = ns::spec::serialize_spec(spec);
        ns::scenario::scenario_spec parsed;
        ASSERT_NO_THROW(parsed = ns::spec::parse_spec_text_as_scenario(
                            once, "fuzz-" + std::to_string(seed)))
            << "seed " << seed << "\n" << once;
        const std::string twice = ns::spec::serialize_spec(parsed);
        EXPECT_EQ(once, twice) << "seed " << seed;
    }
}

TEST(spec_fuzzer, generator_is_a_pure_function_of_its_seed) {
    for (std::uint64_t seed : {3u, 6u}) {
        const scenario_spec a = random_spec(seed);
        const scenario_spec b = random_spec(seed);
        EXPECT_EQ(a.sim.seed, b.sim.seed);
        EXPECT_EQ(a.geometry.num_devices, b.geometry.num_devices);
        EXPECT_EQ(a.faults.query_loss, b.faults.query_loss);
        const auto ra = run_scenario(a);
        const auto rb = run_scenario(b);
        EXPECT_EQ(digest(ra), digest(rb)) << "seed " << seed;
    }
}

}  // namespace
