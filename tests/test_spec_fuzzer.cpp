// Randomized scenario_spec fuzzer (seeded, deterministic).
//
// Generates small random-but-valid specs across the whole declarative
// surface — geometry presets, every traffic kind, both association
// modes, mobility, interference, grouping, and the control-plane fault
// processes — and checks the two load-bearing contracts on each:
// validate() accepts what the generator claims is valid, and the run is
// bit-identical serial vs 8 worker threads. The generator is a pure
// function of its seed, so a failure reproduces from the test log.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "netscatter/scenario/scenario_runner.hpp"
#include "netscatter/scenario/scenario_spec.hpp"
#include "netscatter/util/rng.hpp"

namespace {

using namespace ns::scenario;

/// Uniform pick from a small enum domain.
template <typename T>
T pick(ns::util::rng& rng, std::initializer_list<T> values) {
    const auto index = static_cast<std::size_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(values.size()) - 1));
    return *(values.begin() + static_cast<std::ptrdiff_t>(index));
}

/// One random valid spec, small enough that sixteen runs stay cheap.
scenario_spec random_spec(std::uint64_t seed) {
    ns::util::rng rng(seed);
    scenario_spec spec;
    spec.name = "fuzz-" + std::to_string(seed);
    spec.description = "randomized spec";

    spec.geometry.preset =
        pick(rng, {geometry_preset::office, geometry_preset::warehouse_aisle,
                   geometry_preset::open_field});
    spec.geometry.num_devices =
        static_cast<std::size_t>(rng.uniform_int(8, 32));

    spec.traffic.kind =
        pick(rng, {traffic_kind::saturated, traffic_kind::periodic,
                   traffic_kind::poisson, traffic_kind::bursty});
    spec.traffic.duty_cycle = rng.uniform(0.25, 1.0);
    spec.traffic.period_rounds = static_cast<std::size_t>(rng.uniform_int(1, 4));
    spec.traffic.arrivals_per_round = rng.uniform(0.1, 1.5);
    spec.traffic.burst_probability = rng.uniform(0.0, 0.5);
    spec.traffic.burst_length = static_cast<std::size_t>(rng.uniform_int(1, 6));

    if (rng.bernoulli(0.7)) {
        spec.churn.join_rate_per_round = rng.uniform(0.0, 2.0);
        spec.churn.leave_rate_per_round = rng.uniform(0.0, 2.0);
        spec.churn.initial_active = static_cast<std::size_t>(
            rng.uniform_int(2, static_cast<std::int64_t>(
                                   spec.geometry.num_devices)));
        spec.churn.association = pick(rng, {association_mode::bounded_queue,
                                            association_mode::slotted_aloha});
        spec.churn.aloha_initial_window =
            static_cast<std::uint32_t>(rng.uniform_int(1, 4));
        spec.churn.aloha_max_window = spec.churn.aloha_initial_window *
                                      static_cast<std::uint32_t>(
                                          rng.uniform_int(1, 16));
    }

    if (rng.bernoulli(0.4)) {
        spec.mobility.mobile_fraction = rng.uniform(0.0, 1.0);
        spec.mobility.speed_mps = rng.uniform(0.5, 3.0);
    }

    spec.interference.kind =
        pick(rng, {interference_kind::none, interference_kind::periodic_tone,
                   interference_kind::bursty_tone, interference_kind::lora_frame});
    spec.interference.snr_db = rng.uniform(5.0, 25.0);
    spec.interference.period_rounds =
        static_cast<std::size_t>(rng.uniform_int(1, 4));
    spec.interference.burst_probability = rng.uniform(0.0, 0.6);

    if (rng.bernoulli(0.4)) {
        spec.sim.grouping.enabled = true;
        spec.sim.grouping.group_capacity =
            static_cast<std::size_t>(rng.uniform_int(4, 16));
        spec.sim.grouping.policy =
            pick(rng, {ns::sim::regroup_policy::none,
                       ns::sim::regroup_policy::periodic,
                       ns::sim::regroup_policy::load_triggered});
        spec.sim.grouping.regroup_period_rounds =
            static_cast<std::size_t>(rng.uniform_int(1, 4));
        spec.sim.grouping.load_trigger_misfits =
            static_cast<std::size_t>(rng.uniform_int(1, 4));
    }

    // Fault processes in every draw domain validate() accepts, including
    // the all-zero (disabled) corner.
    if (rng.bernoulli(0.75)) {
        spec.faults.query_loss = rng.uniform(0.0, 0.5);
        spec.faults.query_loss_rssi_slope = rng.uniform(0.0, 0.01);
        spec.faults.ack_loss = rng.uniform(0.0, 0.5);
        spec.faults.reboot_rate_per_round = rng.uniform(0.0, 1.0);
        spec.faults.blackout_probability = rng.uniform(0.0, 0.3);
        spec.faults.blackout_rounds =
            static_cast<std::size_t>(rng.uniform_int(1, 3));
        spec.faults.lease_rounds =
            static_cast<std::size_t>(rng.uniform_int(0, 6));
        spec.faults.missed_query_limit =
            static_cast<std::size_t>(rng.uniform_int(0, 4));
        spec.faults.ack_retry_limit =
            static_cast<std::size_t>(rng.uniform_int(1, 6));
    }

    spec.sim.zero_padding = 4;
    spec.sim.rounds = static_cast<std::size_t>(rng.uniform_int(2, 3));
    spec.sim.seed = rng();
    spec.replicas = 2;
    return spec;
}

/// Comparable digest of everything determinism guarantees, fault
/// observables included.
std::string digest(const scenario_result& result) {
    std::ostringstream out;
    out.precision(17);
    const auto& s = result.sim;
    out << s.total_transmitting << ' ' << s.total_delivered << ' '
        << s.total_bit_errors << ' ' << s.total_bits << ' ' << s.total_skipped
        << ' ' << s.total_idle << ' ' << s.total_joins << ' ' << s.total_leaves
        << ' ' << s.total_reassociations << ' ' << s.total_query_losses << ' '
        << s.total_ack_losses << ' ' << s.total_ack_timeouts << ' '
        << s.total_reboots << ' ' << s.total_down_events << ' '
        << s.total_lease_evictions << ' ' << s.total_desyncs << ' '
        << s.total_resyncs << ' ' << s.total_recoveries << ' '
        << s.total_orphan_tx << ' ' << s.total_orphan_collisions << ' '
        << s.total_blackout_rounds << ' ' << s.devices_down_at_end << '\n';
    for (const auto& round : s.rounds) {
        out << round.active << ',' << round.transmitting << ','
            << round.delivered << ',' << round.bit_errors << ','
            << round.joins << ',' << round.leaves << ','
            << round.query_losses << ',' << round.down_events << ','
            << round.recoveries << ',' << round.blackout << ';';
    }
    out << '\n' << result.stats.join_requests << ' ' << result.stats.offered
        << ' ' << result.stats.gated;
    return out.str();
}

TEST(spec_fuzzer, random_valid_specs_validate_and_run_deterministically) {
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
        const scenario_spec spec = random_spec(seed);
        ASSERT_NO_THROW(spec.sim.validate()) << "seed " << seed;
        ASSERT_NO_THROW(spec.faults.validate()) << "seed " << seed;

        const auto serial =
            run_scenario(spec, {.num_threads = 1, .parallel = false});
        const auto threaded =
            run_scenario(spec, {.num_threads = 8, .parallel = true});
        EXPECT_EQ(digest(serial), digest(threaded)) << "seed " << seed;

        // Conservation invariant on every fuzzed run: each down episode
        // either recovered or is still open at the end.
        EXPECT_EQ(serial.sim.total_down_events,
                  serial.sim.total_recoveries + serial.sim.devices_down_at_end)
            << "seed " << seed;
    }
}

TEST(spec_fuzzer, generator_is_a_pure_function_of_its_seed) {
    for (std::uint64_t seed : {3u, 6u}) {
        const scenario_spec a = random_spec(seed);
        const scenario_spec b = random_spec(seed);
        EXPECT_EQ(a.sim.seed, b.sim.seed);
        EXPECT_EQ(a.geometry.num_devices, b.geometry.num_devices);
        EXPECT_EQ(a.faults.query_loss, b.faults.query_loss);
        const auto ra = run_scenario(a);
        const auto rb = run_scenario(b);
        EXPECT_EQ(digest(ra), digest(rb)) << "seed " << seed;
    }
}

}  // namespace
