// Unit tests for ns::mac — query message, power-aware allocator, access
// point, Aloha backoff.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "netscatter/mac/allocator.hpp"
#include "netscatter/mac/aloha.hpp"
#include "netscatter/mac/ap.hpp"
#include "netscatter/mac/query_message.hpp"
#include "netscatter/mac/scheduler.hpp"
#include "netscatter/util/error.hpp"
#include "netscatter/util/rng.hpp"

namespace {

using namespace ns::mac;
using ns::device::snr_region;

// ------------------------------------------------------ query message --

TEST(query_message, config1_is_32_bits) {
    query_message query;
    EXPECT_EQ(query.length_bits(), 32u);
    EXPECT_NEAR(query.airtime_s(), 32.0 / 160e3, 1e-12);
}

TEST(query_message, association_response_adds_16_bits) {
    query_message query;
    query.response = association_response{.network_id = 3, .shift_slot = 9};
    EXPECT_EQ(query.length_bits(), 48u);
}

TEST(query_message, config2_is_1760_bits) {
    // §3.3.3 / §4.4: the full reassignment query is 1760 bits and takes
    // under 11 ms on the 160 kbps downlink.
    query_message query;
    query.full_reassignment = true;
    EXPECT_EQ(query.length_bits(), 1760u);
    EXPECT_NEAR(query.airtime_s(), 11e-3, 1e-6);  // 1760 / 160k = 11 ms exactly
}

TEST(query_message, serialize_parse_roundtrip_minimal) {
    query_message query;
    query.group_id = 5;
    const auto bits = serialize(query);
    EXPECT_EQ(bits.size(), query.length_bits());
    const auto parsed = parse_query(bits);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->group_id, 5);
    EXPECT_FALSE(parsed->response.has_value());
    EXPECT_FALSE(parsed->full_reassignment);
}

TEST(query_message, serialize_parse_roundtrip_with_response) {
    query_message query;
    query.group_id = 0;
    query.response = association_response{.network_id = 42, .shift_slot = 17};
    const auto parsed = parse_query(serialize(query));
    ASSERT_TRUE(parsed.has_value());
    ASSERT_TRUE(parsed->response.has_value());
    EXPECT_EQ(parsed->response->network_id, 42);
    EXPECT_EQ(parsed->response->shift_slot, 17);
}

TEST(query_message, serialize_parse_roundtrip_full_reassignment) {
    query_message query;
    query.full_reassignment = true;
    query.reassignment_index_low64 = 0xABCDEF0123456789ULL;
    const auto bits = serialize(query);
    EXPECT_EQ(bits.size(), 1760u);
    const auto parsed = parse_query(bits);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_TRUE(parsed->full_reassignment);
    EXPECT_EQ(parsed->reassignment_index_low64, 0xABCDEF0123456789ULL);
}

TEST(query_message, parse_rejects_corruption) {
    query_message query;
    auto bits = serialize(query);
    bits[5] = !bits[5];
    EXPECT_FALSE(parse_query(bits).has_value());
}

TEST(query_message, parse_rejects_truncation) {
    EXPECT_FALSE(parse_query(std::vector<bool>(8, false)).has_value());
}

TEST(query_message, permutation_bits_match_paper) {
    // §3.3.3: log2(256!) <= 1700 bits; exactly ceil(log2(256!)) = 1684.
    EXPECT_EQ(permutation_index_bits(256), 1684u);
    EXPECT_LE(permutation_index_bits(256), 1700u);
    EXPECT_EQ(permutation_index_bits(1), 0u);
    // And it fits inside the 1728-bit reassignment field.
    EXPECT_LE(permutation_index_bits(256), reassignment_field_bits);
}

// ---------------------------------------------------------- allocator --

allocation_params default_alloc(std::uint32_t skip = 2,
                                std::uint32_t assoc_slots = 2) {
    return allocation_params{.phy = ns::phy::deployed_params(),
                             .skip = skip,
                             .num_association_slots = assoc_slots};
}

TEST(allocator, slot_count_and_spacing) {
    const shift_allocator alloc(default_alloc());
    // 512 bins / SKIP 2 = 256 slots, minus 2 association slots.
    EXPECT_EQ(alloc.num_data_slots(), 254u);
    for (std::uint32_t shift : alloc.placement_order()) {
        EXPECT_EQ(shift % 2, 0u);
        EXPECT_LT(shift, 512u);
    }
}

TEST(allocator, no_association_reserve_keeps_full_capacity) {
    const shift_allocator alloc(default_alloc(2, 0));
    EXPECT_EQ(alloc.num_data_slots(), 256u);  // the deployed 256 devices
    EXPECT_THROW(alloc.association_shift(snr_region::high),
                 ns::util::invalid_argument);
}

TEST(allocator, association_shifts_in_distinct_regions) {
    const shift_allocator alloc(default_alloc());
    const std::uint32_t high = alloc.association_shift(snr_region::high);
    const std::uint32_t low = alloc.association_shift(snr_region::low);
    EXPECT_NE(high, low);
    // High region near bin 0, low region near mid-band (bin 256).
    EXPECT_LE(alloc.circular_distance(high, 0), 8u);
    EXPECT_GE(alloc.circular_distance(low, 0), 200u);
    // Association shifts are not data slots.
    const auto& order = alloc.placement_order();
    EXPECT_EQ(std::count(order.begin(), order.end(), high), 0);
    EXPECT_EQ(std::count(order.begin(), order.end(), low), 0);
}

TEST(allocator, circular_distance_wraps) {
    const shift_allocator alloc(default_alloc());
    EXPECT_EQ(alloc.circular_distance(0, 510), 2u);
    EXPECT_EQ(alloc.circular_distance(510, 0), 2u);
    EXPECT_EQ(alloc.circular_distance(0, 256), 256u);
    EXPECT_EQ(alloc.circular_distance(5, 5), 0u);
}

TEST(allocator, placement_order_monotone_distance_from_zero) {
    const shift_allocator alloc(default_alloc(2, 0));
    const auto& order = alloc.placement_order();
    std::uint32_t previous = 0;
    for (std::size_t i = 0; i < order.size(); ++i) {
        const std::uint32_t distance = alloc.circular_distance(order[i], 0);
        EXPECT_GE(distance + 2, previous) << "position " << i;  // non-strict by pairs
        previous = distance;
    }
}

TEST(allocator, strong_devices_near_bin_zero) {
    const shift_allocator alloc(default_alloc(2, 0));
    std::vector<device_power> devices;
    for (std::uint32_t i = 0; i < 256; ++i) {
        devices.push_back({i, -100.0 + static_cast<double>(i) * 0.1});
    }
    const auto result = alloc.allocate(devices);
    ASSERT_EQ(result.shifts.size(), 256u);
    // Strongest device (id 255) must sit closer to bin 0 than the weakest
    // (id 0), which must sit near mid-band.
    EXPECT_LE(alloc.circular_distance(result.shifts.at(255), 0), 4u);
    EXPECT_GE(alloc.circular_distance(result.shifts.at(0), 0), 250u);
}

TEST(allocator, all_assigned_shifts_distinct) {
    const shift_allocator alloc(default_alloc(2, 0));
    std::vector<device_power> devices;
    ns::util::rng gen(1);
    for (std::uint32_t i = 0; i < 256; ++i) {
        devices.push_back({i, gen.uniform(-120.0, -80.0)});
    }
    const auto result = alloc.allocate(devices);
    std::set<std::uint32_t> shifts;
    for (const auto& [id, shift] : result.shifts) shifts.insert(shift);
    EXPECT_EQ(shifts.size(), 256u);
}

TEST(allocator, sparse_population_spreads_out) {
    // §4.4: below 128 devices the effective spacing exceeds 2 cyclic
    // shifts, so devices do not interfere.
    const shift_allocator alloc(default_alloc(2, 0));
    std::vector<device_power> devices;
    for (std::uint32_t i = 0; i < 64; ++i) devices.push_back({i, -100.0});
    const auto result = alloc.allocate(devices);
    std::vector<std::uint32_t> shifts;
    for (const auto& [id, shift] : result.shifts) shifts.push_back(shift);
    std::sort(shifts.begin(), shifts.end());
    for (std::size_t i = 1; i < shifts.size(); ++i) {
        EXPECT_GE(shifts[i] - shifts[i - 1], 6u);  // >= 3 slots apart
    }
}

TEST(allocator, rejects_overload) {
    const shift_allocator alloc(default_alloc(2, 0));
    std::vector<device_power> devices;
    for (std::uint32_t i = 0; i < 257; ++i) devices.push_back({i, -100.0});
    EXPECT_THROW(alloc.allocate(devices), ns::util::invalid_argument);
}

TEST(allocator, skip_one_supports_full_bins) {
    const shift_allocator alloc(default_alloc(1, 0));
    EXPECT_EQ(alloc.num_data_slots(), 512u);
}

TEST(allocator, validates_parameters) {
    allocation_params bad = default_alloc();
    bad.skip = 0;
    EXPECT_THROW(shift_allocator{bad}, ns::util::invalid_argument);
}

TEST(allocator, tolerable_power_difference_reference_points) {
    const auto p = ns::phy::deployed_params();
    // §3.2.3: at SKIP = 2 a neighbour survives up to ~13.5 dB difference.
    EXPECT_NEAR(tolerable_power_difference_db(p, 2), 13.5, 0.5);
    // Mid-band reaches the 35 dB practical cap (Fig. 15b).
    EXPECT_DOUBLE_EQ(tolerable_power_difference_db(p, 256), 35.0);
    // Same bin: nothing is tolerable.
    EXPECT_DOUBLE_EQ(tolerable_power_difference_db(p, 0), 0.0);
}

TEST(allocator, tolerable_power_difference_monotone) {
    const auto p = ns::phy::deployed_params();
    double previous = 0.0;
    for (std::uint32_t s = 1; s <= 256; s *= 2) {
        const double tolerable = tolerable_power_difference_db(p, s);
        EXPECT_GE(tolerable, previous) << "separation " << s;
        previous = tolerable;
    }
}

TEST(allocator, incremental_prefers_similar_power_neighbours) {
    const shift_allocator alloc(default_alloc(2, 0));
    // A strong device at shift 0 and a weak one at mid-band.
    const std::vector<std::pair<std::uint32_t, double>> occupied = {
        {0, -80.0}, {256, -112.0}};
    // A weak newcomer should land near the weak device, not next to the
    // strong one.
    const auto shift = alloc.assign_incremental(-110.0, occupied);
    ASSERT_TRUE(shift.has_value());
    EXPECT_LT(alloc.circular_distance(*shift, 256), alloc.circular_distance(*shift, 0));
}

TEST(allocator, incremental_respects_occupancy) {
    const shift_allocator alloc(default_alloc(2, 0));
    const std::vector<std::pair<std::uint32_t, double>> occupied = {{0, -100.0}};
    const auto shift = alloc.assign_incremental(-100.0, occupied);
    ASSERT_TRUE(shift.has_value());
    EXPECT_NE(*shift, 0u);
}

TEST(allocator, incremental_fails_when_infeasible) {
    // One monster device 60 dB above a newcomer: nowhere is safe (the cap
    // is 35 dB), so the allocator must signal a full reassignment.
    const shift_allocator alloc(default_alloc(2, 0));
    const std::vector<std::pair<std::uint32_t, double>> occupied = {{0, -50.0}};
    EXPECT_FALSE(alloc.assign_incremental(-110.0, occupied).has_value());
}

// ------------------------------------------------------------------ ap --

TEST(ap, association_flow_assigns_and_acks) {
    access_point ap(default_alloc(2, 0));
    association_request request{.device_id = 7, .region = snr_region::high,
                                .rx_power_dbm = -100.0};
    const association_response response = ap.handle_association_request(request);
    EXPECT_TRUE(ap.pending_response().has_value());
    EXPECT_TRUE(ap.shift_of(7).has_value());
    EXPECT_EQ(*ap.shift_of(7), response.shift_slot * 2u);

    // The response rides on queries until the ACK arrives (§3.3.4).
    EXPECT_TRUE(ap.build_query().response.has_value());
    ap.handle_association_ack(7);
    EXPECT_FALSE(ap.pending_response().has_value());
    EXPECT_FALSE(ap.build_query().response.has_value());
    EXPECT_TRUE(ap.devices().at(7).acked);
}

TEST(ap, ack_for_unknown_device_is_counted_noop) {
    // A lossy control channel can replay an ACK after the sender was
    // evicted, or corrupt the id field: the AP must absorb it, not abort.
    access_point ap(default_alloc(2, 0));
    ap.handle_association_ack(99);
    EXPECT_EQ(ap.unknown_acks(), 1u);
    EXPECT_EQ(ap.duplicate_acks(), 0u);
    EXPECT_TRUE(ap.devices().empty());
    // The table is untouched and the AP keeps functioning normally.
    ap.handle_association_request(
        {.device_id = 7, .region = snr_region::high, .rx_power_dbm = -100.0});
    ap.handle_association_ack(7);
    EXPECT_TRUE(ap.devices().at(7).acked);
    EXPECT_EQ(ap.unknown_acks(), 1u);
}

TEST(ap, duplicate_ack_is_counted_noop) {
    access_point ap(default_alloc(2, 0));
    ap.handle_association_request(
        {.device_id = 7, .region = snr_region::high, .rx_power_dbm = -100.0});
    ap.handle_association_ack(7);
    EXPECT_TRUE(ap.devices().at(7).acked);
    // The device retransmits the ACK (it may have missed the next query
    // implying receipt): same final state, one counted duplicate.
    ap.handle_association_ack(7);
    ap.handle_association_ack(7);
    EXPECT_TRUE(ap.devices().at(7).acked);
    EXPECT_EQ(ap.duplicate_acks(), 2u);
    EXPECT_EQ(ap.unknown_acks(), 0u);
}

TEST(ap, unknown_ack_matching_pending_replay_clears_it) {
    // The joiner ACKed and was then dropped from the table before the
    // ACK landed (e.g. an eviction raced the handshake): the replayed
    // response must not ride every future query forever.
    access_point ap(default_alloc(2, 0));
    ap.handle_association_request(
        {.device_id = 5, .region = snr_region::high, .rx_power_dbm = -100.0});
    EXPECT_TRUE(ap.pending_response().has_value());
    // Simulate the table losing the entry out-of-band is not possible
    // through the public API, so exercise the unknown-id path directly:
    // an unknown ACK that does NOT match the pending device leaves the
    // replay in place...
    ap.handle_association_ack(99);
    EXPECT_TRUE(ap.pending_response().has_value());
    EXPECT_EQ(ap.unknown_acks(), 1u);
    // ...while the pending device's own ACK (known here) clears it.
    ap.handle_association_ack(5);
    EXPECT_FALSE(ap.pending_response().has_value());
}

TEST(ap, network_ids_unique) {
    access_point ap(default_alloc(2, 0));
    std::set<std::uint8_t> ids;
    for (std::uint32_t d = 0; d < 16; ++d) {
        const auto response = ap.handle_association_request(
            {.device_id = d, .region = snr_region::high, .rx_power_dbm = -100.0});
        ids.insert(response.network_id);
        ap.handle_association_ack(d);
    }
    EXPECT_EQ(ids.size(), 16u);
}

TEST(ap, infeasible_join_triggers_full_reassignment) {
    access_point ap(default_alloc(2, 0));
    ap.handle_association_request(
        {.device_id = 0, .region = snr_region::high, .rx_power_dbm = -50.0});
    ap.handle_association_ack(0);
    EXPECT_EQ(ap.full_reassignments(), 0u);
    // A newcomer 60 dB weaker cannot be placed incrementally.
    ap.handle_association_request(
        {.device_id = 1, .region = snr_region::low, .rx_power_dbm = -110.0});
    EXPECT_EQ(ap.full_reassignments(), 1u);
    const query_message query = ap.build_query();
    EXPECT_TRUE(query.full_reassignment);
    EXPECT_EQ(query.length_bits(), 1760u + 16u);  // + piggybacked response
    // The flag clears after one query.
    EXPECT_FALSE(ap.build_query().full_reassignment);
}

TEST(ap, regroup_by_signal_strength) {
    access_point ap(default_alloc(2, 0));
    for (std::uint32_t d = 0; d < 8; ++d) {
        ap.handle_association_request({.device_id = d,
                                       .region = snr_region::high,
                                       .rx_power_dbm = -90.0 - 5.0 * d});
        ap.handle_association_ack(d);
    }
    EXPECT_EQ(ap.regroup(4), 2u);
    // The four strongest (smallest d) share group 0.
    for (std::uint32_t d = 0; d < 4; ++d) EXPECT_EQ(ap.devices().at(d).group_id, 0);
    for (std::uint32_t d = 4; d < 8; ++d) EXPECT_EQ(ap.devices().at(d).group_id, 1);
}

TEST(ap, regroup_validates_capacity) {
    access_point ap(default_alloc(2, 0));
    EXPECT_THROW(ap.regroup(0), ns::util::invalid_argument);
}

// --------------------------------------------------------------- aloha --

TEST(aloha, transmits_within_window) {
    aloha_backoff backoff(4, 64, ns::util::rng(1));
    int rounds = 0;
    while (!backoff.should_transmit()) ++rounds;
    EXPECT_LT(rounds, 4);
}

TEST(aloha, collision_doubles_window_up_to_max) {
    aloha_backoff backoff(4, 16, ns::util::rng(2));
    backoff.on_collision();
    EXPECT_EQ(backoff.current_window(), 8u);
    backoff.on_collision();
    EXPECT_EQ(backoff.current_window(), 16u);
    backoff.on_collision();
    EXPECT_EQ(backoff.current_window(), 16u);  // clamped
}

TEST(aloha, success_resets_window) {
    aloha_backoff backoff(4, 64, ns::util::rng(3));
    backoff.on_collision();
    backoff.on_collision();
    backoff.on_success();
    EXPECT_EQ(backoff.current_window(), 4u);
}

TEST(aloha, validates_parameters) {
    EXPECT_THROW(aloha_backoff(0, 4, ns::util::rng(4)), ns::util::invalid_argument);
    EXPECT_THROW(aloha_backoff(8, 4, ns::util::rng(4)), ns::util::invalid_argument);
}

TEST(aloha, contention_resolves_two_devices) {
    // Two contenders with backoff eventually transmit in different
    // rounds.
    aloha_backoff a(2, 64, ns::util::rng(5));
    aloha_backoff b(2, 64, ns::util::rng(6));
    bool resolved = false;
    for (int round = 0; round < 200 && !resolved; ++round) {
        const bool ta = a.should_transmit();
        const bool tb = b.should_transmit();
        if (ta && tb) {
            a.on_collision();
            b.on_collision();
        } else if (ta || tb) {
            resolved = true;
        }
    }
    EXPECT_TRUE(resolved);
}

TEST(aloha, contention_pool_drains_a_burst_of_joiners) {
    // 24 simultaneous joiners on one shift: the pool must admit them one
    // grant per round, with collisions forcing the backoff to spread.
    ns::util::rng rng(9);
    aloha_contention pool(2, 64);
    for (std::uint32_t id = 0; id < 24; ++id) {
        pool.add(id, ns::device::snr_region::high, rng.fork());
    }
    std::size_t granted = 0, collisions = 0, rounds = 0;
    for (; rounds < 2000 && !pool.empty(); ++rounds) {
        const contention_round round = pool.step(1);
        EXPECT_LE(round.granted.size(), 1u);
        granted += round.granted.size();
        collisions += round.collisions;
    }
    EXPECT_TRUE(pool.empty());
    EXPECT_EQ(granted, 24u);
    EXPECT_GT(collisions, 0u);    // a same-shift burst must collide
    EXPECT_GT(rounds, 24u);       // collisions cost extra rounds
}

TEST(aloha, contention_pool_grants_one_per_region_when_budget_allows) {
    // One contender per region with window 1: both transmit round 1; two
    // grants fit a 2-grant budget, regions never collide with each other.
    ns::util::rng rng(11);
    aloha_contention pool(1, 4);
    pool.add(7, ns::device::snr_region::high, rng.fork());
    pool.add(9, ns::device::snr_region::low, rng.fork());
    const contention_round round = pool.step(2);
    ASSERT_EQ(round.granted.size(), 2u);
    EXPECT_EQ(round.granted[0], 7u);  // high-SNR region granted first
    EXPECT_EQ(round.granted[1], 9u);
    EXPECT_EQ(round.collisions, 0u);
    EXPECT_EQ(round.requests, 2u);
    EXPECT_TRUE(pool.empty());
}

TEST(aloha, contention_pool_defers_beyond_grant_budget_without_penalty) {
    ns::util::rng rng(13);
    aloha_contention pool(1, 4);
    pool.add(1, ns::device::snr_region::high, rng.fork());
    pool.add(2, ns::device::snr_region::low, rng.fork());
    // Budget 0 (e.g. the network is full): both transmit, neither is
    // granted nor penalized; with window 1 they transmit again next
    // round and a budget of 2 admits both.
    const contention_round starved = pool.step(0);
    EXPECT_EQ(starved.requests, 2u);
    EXPECT_EQ(starved.collisions, 0u);
    EXPECT_TRUE(starved.granted.empty());
    EXPECT_EQ(pool.size(), 2u);
    const contention_round served = pool.step(2);
    EXPECT_EQ(served.granted.size(), 2u);
}

TEST(aloha, contention_pool_remove_abandons_contender) {
    ns::util::rng rng(15);
    aloha_contention pool(2, 8);
    pool.add(5, ns::device::snr_region::high, rng.fork());
    EXPECT_TRUE(pool.contains(5));
    pool.remove(5);
    EXPECT_FALSE(pool.contains(5));
    EXPECT_TRUE(pool.empty());
}

TEST(aloha, sustained_collisions_bound_the_retry_gap) {
    // Under 100% collision (every transmission reported collided) the
    // window saturates at max_window and stays there — so the gap between
    // consecutive retries is bounded by max_window rounds: the device
    // never starves, it keeps retrying within a bounded window forever.
    constexpr std::uint32_t kMaxWindow = 16;
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
        aloha_backoff backoff(2, kMaxWindow, ns::util::rng(seed));
        int since_last_tx = 0;
        int transmissions = 0;
        for (int round = 0; round < 2000; ++round) {
            if (backoff.should_transmit()) {
                ++transmissions;
                since_last_tx = 0;
                backoff.on_collision();
                EXPECT_LE(backoff.current_window(), kMaxWindow);
            } else {
                ++since_last_tx;
                // A counter is always drawn in [0, window): the silence
                // between retries can never exceed the window bound.
                EXPECT_LT(since_last_tx, static_cast<int>(kMaxWindow));
            }
        }
        // No starvation: with gaps bounded by 16 rounds, 2000 rounds must
        // yield at least 2000/16 retries.
        EXPECT_GE(transmissions, 2000 / static_cast<int>(kMaxWindow));
    }
}

TEST(aloha, sustained_collision_schedule_is_seed_deterministic) {
    // Identical seeds must replay the identical retry schedule; distinct
    // seeds are allowed to (and here do) desynchronize.
    auto schedule = [](std::uint64_t seed) {
        aloha_backoff backoff(2, 32, ns::util::rng(seed));
        std::vector<int> tx_rounds;
        for (int round = 0; round < 500; ++round) {
            if (backoff.should_transmit()) {
                tx_rounds.push_back(round);
                backoff.on_collision();
            }
        }
        return tx_rounds;
    };
    EXPECT_EQ(schedule(42), schedule(42));
    EXPECT_EQ(schedule(7), schedule(7));
    EXPECT_NE(schedule(42), schedule(7));
}

TEST(aloha, contention_pool_survives_sustained_full_collision) {
    // Two same-region contenders collide whenever their counters expire
    // together; even when the pool sees long collision streaks neither
    // device's window exceeds the max and both keep transmitting.
    ns::util::rng rng(99);
    aloha_contention pool(2, 8);
    pool.add(1, ns::device::snr_region::high, rng.fork());
    pool.add(2, ns::device::snr_region::high, rng.fork());
    std::size_t total_requests = 0;
    std::size_t rounds = 0;
    // Grant budget 0: even lone (uncollided) requests are deferred, so
    // nobody ever leaves the pool — sustained contention by construction.
    for (; rounds < 512; ++rounds) {
        const contention_round outcome = pool.step(0);
        total_requests += outcome.requests;
        EXPECT_TRUE(pool.contains(1));
        EXPECT_TRUE(pool.contains(2));
    }
    // Bounded windows imply a minimum request rate: each contender
    // transmits at least once per max_window=8 rounds.
    EXPECT_GE(total_requests, 2 * rounds / 8);
}

TEST(scheduler, admit_prefers_least_stretch_and_respects_range) {
    const group_scheduler scheduler({.group_capacity = 4, .max_dynamic_range_db = 10.0});
    const std::vector<group_span> groups = {
        {.members = 2, .min_power_dbm = -60.0, .max_power_dbm = -55.0},
        {.members = 2, .min_power_dbm = -75.0, .max_power_dbm = -70.0},
    };
    // -64 dBm fits group 0 with a 4 dB stretch; group 1 would need 11 dB.
    EXPECT_EQ(scheduler.admit(groups, -64.0), std::optional<std::size_t>(0));
    // -68 dBm fits only group 1 (group 0 would stretch to 13 dB).
    EXPECT_EQ(scheduler.admit(groups, -68.0), std::optional<std::size_t>(1));
    // -90 dBm fits neither: misfit.
    EXPECT_FALSE(scheduler.admit(groups, -90.0).has_value());
    // A full group never admits.
    const std::vector<group_span> full = {
        {.members = 4, .min_power_dbm = -60.0, .max_power_dbm = -55.0}};
    EXPECT_FALSE(scheduler.admit(full, -57.0).has_value());
    // An emptied group admits anything with zero stretch.
    const std::vector<group_span> emptied = {
        {.members = 0, .min_power_dbm = -60.0, .max_power_dbm = -55.0}};
    EXPECT_EQ(scheduler.admit(emptied, -90.0), std::optional<std::size_t>(0));
}

}  // namespace
