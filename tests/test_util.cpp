// Unit tests for ns::util — RNG, CRC, bit packing, statistics, tables,
// unit conversions.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>

#include "netscatter/util/bits.hpp"
#include "netscatter/util/crc.hpp"
#include "netscatter/util/error.hpp"
#include "netscatter/util/rng.hpp"
#include "netscatter/util/stats.hpp"
#include "netscatter/util/table.hpp"
#include "netscatter/util/units.hpp"

namespace {

using namespace ns::util;

// ---------------------------------------------------------------- rng --

TEST(rng, same_seed_same_stream) {
    rng a(42), b(42);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(rng, different_seeds_different_streams) {
    rng a(1), b(2);
    int differences = 0;
    for (int i = 0; i < 32; ++i) {
        if (a() != b()) ++differences;
    }
    EXPECT_GT(differences, 24);
}

TEST(rng, uniform_in_unit_interval) {
    rng gen(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = gen.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(rng, uniform_range_respects_bounds) {
    rng gen(7);
    for (int i = 0; i < 1000; ++i) {
        const double u = gen.uniform(-3.0, 5.0);
        EXPECT_GE(u, -3.0);
        EXPECT_LT(u, 5.0);
    }
}

TEST(rng, uniform_mean_near_half) {
    rng gen(11);
    running_stats stats;
    for (int i = 0; i < 100000; ++i) stats.add(gen.uniform());
    EXPECT_NEAR(stats.mean(), 0.5, 0.01);
}

TEST(rng, uniform_int_covers_range_inclusive) {
    rng gen(3);
    std::set<std::int64_t> seen;
    for (int i = 0; i < 1000; ++i) seen.insert(gen.uniform_int(0, 7));
    EXPECT_EQ(seen.size(), 8u);
    EXPECT_EQ(*seen.begin(), 0);
    EXPECT_EQ(*seen.rbegin(), 7);
}

TEST(rng, uniform_int_single_value) {
    rng gen(3);
    EXPECT_EQ(gen.uniform_int(5, 5), 5);
}

TEST(rng, uniform_int_rejects_inverted_bounds) {
    rng gen(3);
    EXPECT_THROW(gen.uniform_int(2, 1), invalid_argument);
}

TEST(rng, gaussian_moments) {
    rng gen(13);
    running_stats stats;
    for (int i = 0; i < 200000; ++i) stats.add(gen.gaussian());
    EXPECT_NEAR(stats.mean(), 0.0, 0.02);
    EXPECT_NEAR(stats.variance(), 1.0, 0.03);
}

TEST(rng, gaussian_tail_mass) {
    // The ziggurat's base layer hands |x| > r = 3.4426 to a dedicated
    // exponential-rejection tail sampler; make sure that branch runs and
    // produces the right mass. P(|X| > r) ~ 5.8e-4, so 400k draws
    // expect ~233 tail samples (Poisson sd ~15).
    rng gen(23);
    const double r = 3.442619855899;
    int beyond_r = 0;
    double extreme = 0.0;
    for (int i = 0; i < 400000; ++i) {
        const double x = gen.gaussian();
        if (std::abs(x) > r) ++beyond_r;
        extreme = std::max(extreme, std::abs(x));
    }
    EXPECT_GT(beyond_r, 130);
    EXPECT_LT(beyond_r, 350);
    EXPECT_GT(extreme, r);  // the tail sampler reaches past the layers
    EXPECT_LT(extreme, 6.5);
}

TEST(rng, gaussian_symmetric_and_kurtosis) {
    // Third and fourth standardized moments: skewness 0, kurtosis 3 —
    // the moments a wrong layer table or a biased sign bit would bend.
    rng gen(29);
    double m3 = 0.0, m4 = 0.0, m2 = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) {
        const double x = gen.gaussian();
        m2 += x * x;
        m3 += x * x * x;
        m4 += x * x * x * x;
    }
    m2 /= n;
    m3 /= n;
    m4 /= n;
    EXPECT_NEAR(m3 / std::pow(m2, 1.5), 0.0, 0.05);
    EXPECT_NEAR(m4 / (m2 * m2), 3.0, 0.15);
}

TEST(rng, gaussian_mean_stddev_parameters) {
    rng gen(17);
    running_stats stats;
    for (int i = 0; i < 100000; ++i) stats.add(gen.gaussian(3.0, 2.0));
    EXPECT_NEAR(stats.mean(), 3.0, 0.05);
    EXPECT_NEAR(stats.stddev(), 2.0, 0.05);
}

TEST(rng, exponential_mean) {
    rng gen(19);
    running_stats stats;
    for (int i = 0; i < 100000; ++i) stats.add(gen.exponential(2.5));
    EXPECT_NEAR(stats.mean(), 2.5, 0.1);
}

TEST(rng, exponential_rejects_nonpositive_mean) {
    rng gen(19);
    EXPECT_THROW(gen.exponential(0.0), invalid_argument);
}

TEST(rng, bernoulli_probability) {
    rng gen(23);
    int hits = 0;
    for (int i = 0; i < 100000; ++i) hits += gen.bernoulli(0.3) ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(hits) / 100000.0, 0.3, 0.01);
}

TEST(rng, bits_length_and_balance) {
    rng gen(29);
    const std::vector<bool> bits = gen.bits(10000);
    ASSERT_EQ(bits.size(), 10000u);
    int ones = 0;
    for (bool b : bits) ones += b ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(ones) / 10000.0, 0.5, 0.03);
}

TEST(rng, fork_produces_decorrelated_stream) {
    rng parent(31);
    rng child = parent.fork();
    int equal = 0;
    for (int i = 0; i < 64; ++i) {
        if (parent() == child()) ++equal;
    }
    EXPECT_LT(equal, 4);
}

// ---------------------------------------------------------------- crc --

TEST(crc, crc8_empty_is_zero) {
    EXPECT_EQ(crc8({}), 0x00);
}

TEST(crc, crc8_detects_single_bit_flip) {
    rng gen(5);
    std::vector<bool> bits = gen.bits(64);
    const std::uint8_t original = crc8(bits);
    for (std::size_t i = 0; i < bits.size(); ++i) {
        bits[i] = !bits[i];
        EXPECT_NE(crc8(bits), original) << "undetected flip at " << i;
        bits[i] = !bits[i];
    }
}

TEST(crc, append_check_roundtrip) {
    rng gen(6);
    const std::vector<bool> payload = gen.bits(32);
    const std::vector<bool> protected_bits = append_crc8(payload);
    ASSERT_EQ(protected_bits.size(), 40u);
    EXPECT_TRUE(check_crc8(protected_bits));
    EXPECT_EQ(strip_crc8(protected_bits), payload);
}

TEST(crc, check_fails_on_corruption) {
    rng gen(7);
    std::vector<bool> protected_bits = append_crc8(gen.bits(32));
    protected_bits[10] = !protected_bits[10];
    EXPECT_FALSE(check_crc8(protected_bits));
}

TEST(crc, check_fails_on_too_short_input) {
    EXPECT_FALSE(check_crc8(std::vector<bool>(4, true)));
}

TEST(crc, strip_requires_at_least_crc_size) {
    EXPECT_THROW(strip_crc8(std::vector<bool>(4, true)), invalid_argument);
}

TEST(crc, crc16_ccitt_known_value) {
    // CRC-16-CCITT-FALSE of "123456789" is 0x29B1 (standard check value).
    const std::vector<bool> bits =
        bytes_to_bits({'1', '2', '3', '4', '5', '6', '7', '8', '9'});
    EXPECT_EQ(crc16_ccitt(bits), 0x29B1);
}

TEST(crc, crc16_detects_swaps) {
    const std::vector<bool> a = bytes_to_bits({0x01, 0x02});
    const std::vector<bool> b = bytes_to_bits({0x02, 0x01});
    EXPECT_NE(crc16_ccitt(a), crc16_ccitt(b));
}

// --------------------------------------------------------------- bits --

TEST(bits, bytes_to_bits_msb_first) {
    const std::vector<bool> bits = bytes_to_bits({0x80, 0x01});
    ASSERT_EQ(bits.size(), 16u);
    EXPECT_TRUE(bits[0]);
    for (int i = 1; i < 15; ++i) EXPECT_FALSE(bits[static_cast<std::size_t>(i)]);
    EXPECT_TRUE(bits[15]);
}

TEST(bits, roundtrip_bytes) {
    rng gen(9);
    std::vector<std::uint8_t> bytes(64);
    for (auto& b : bytes) b = static_cast<std::uint8_t>(gen.uniform_int(0, 255));
    EXPECT_EQ(bits_to_bytes(bytes_to_bits(bytes)), bytes);
}

TEST(bits, bits_to_bytes_requires_multiple_of_8) {
    EXPECT_THROW(bits_to_bytes(std::vector<bool>(7, true)), invalid_argument);
}

TEST(bits, append_and_read_uint_roundtrip) {
    std::vector<bool> bits;
    append_uint(bits, 0xDEADBEEF, 32);
    append_uint(bits, 5, 3);
    std::size_t offset = 0;
    EXPECT_EQ(read_uint(bits, offset, 32), 0xDEADBEEFu);
    EXPECT_EQ(read_uint(bits, offset, 3), 5u);
    EXPECT_EQ(offset, 35u);
}

TEST(bits, read_uint_throws_past_end) {
    std::vector<bool> bits(8, true);
    std::size_t offset = 4;
    EXPECT_THROW(read_uint(bits, offset, 8), invalid_argument);
}

TEST(bits, append_uint_width_bounds) {
    std::vector<bool> bits;
    EXPECT_THROW(append_uint(bits, 1, 0), invalid_argument);
    EXPECT_THROW(append_uint(bits, 1, 65), invalid_argument);
}

TEST(bits, hamming_distance_counts) {
    const std::vector<bool> a = {true, false, true, false};
    const std::vector<bool> b = {true, true, false, false};
    EXPECT_EQ(hamming_distance(a, b), 2u);
    EXPECT_EQ(hamming_distance(a, a), 0u);
}

TEST(bits, hamming_distance_length_mismatch_throws) {
    EXPECT_THROW(hamming_distance({true}, {true, false}), invalid_argument);
}

// -------------------------------------------------------------- stats --

TEST(stats, running_stats_basic) {
    running_stats stats;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stats.add(x);
    EXPECT_EQ(stats.count(), 8u);
    EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
    EXPECT_NEAR(stats.variance(), 32.0 / 7.0, 1e-12);
    EXPECT_DOUBLE_EQ(stats.min(), 2.0);
    EXPECT_DOUBLE_EQ(stats.max(), 9.0);
}

TEST(stats, running_stats_empty_and_single) {
    running_stats stats;
    EXPECT_EQ(stats.variance(), 0.0);
    stats.add(3.0);
    EXPECT_EQ(stats.variance(), 0.0);
    EXPECT_DOUBLE_EQ(stats.mean(), 3.0);
}

TEST(stats, percentile_median_and_extremes) {
    const std::vector<double> samples = {5.0, 1.0, 3.0, 2.0, 4.0};
    EXPECT_DOUBLE_EQ(percentile(samples, 0.5), 3.0);
    EXPECT_DOUBLE_EQ(percentile(samples, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(percentile(samples, 1.0), 5.0);
}

TEST(stats, percentile_interpolates) {
    const std::vector<double> samples = {0.0, 10.0};
    EXPECT_DOUBLE_EQ(percentile(samples, 0.25), 2.5);
}

TEST(stats, percentile_rejects_bad_input) {
    EXPECT_THROW(percentile({}, 0.5), invalid_argument);
    EXPECT_THROW(percentile({1.0}, 1.5), invalid_argument);
}

TEST(stats, empirical_cdf_monotone_ends_at_one) {
    rng gen(33);
    std::vector<double> samples;
    for (int i = 0; i < 1000; ++i) samples.push_back(gen.gaussian());
    const auto cdf = empirical_cdf(samples);
    ASSERT_FALSE(cdf.empty());
    for (std::size_t i = 1; i < cdf.size(); ++i) {
        EXPECT_GT(cdf[i].x, cdf[i - 1].x);
        EXPECT_GE(cdf[i].probability, cdf[i - 1].probability);
    }
    EXPECT_DOUBLE_EQ(cdf.back().probability, 1.0);
}

TEST(stats, cdf_and_ccdf_are_complementary) {
    const std::vector<double> samples = {1.0, 2.0, 3.0, 4.0};
    EXPECT_DOUBLE_EQ(cdf_at(samples, 2.5), 0.5);
    EXPECT_DOUBLE_EQ(ccdf_at(samples, 2.5), 0.5);
    EXPECT_DOUBLE_EQ(cdf_at(samples, 2.5) + ccdf_at(samples, 2.5), 1.0);
}

TEST(stats, mean_and_variance_of_vector) {
    const std::vector<double> samples = {1.0, 2.0, 3.0};
    EXPECT_DOUBLE_EQ(mean_of(samples), 2.0);
    EXPECT_DOUBLE_EQ(variance_of(samples), 1.0);
}

// -------------------------------------------------------------- table --

TEST(table, aligned_output_contains_cells) {
    text_table table("demo", {"a", "bb"});
    table.add_row({"1", "2"});
    table.add_numeric_row({3.5, 4.25}, 2);
    std::ostringstream out;
    table.print(out);
    const std::string text = out.str();
    EXPECT_NE(text.find("demo"), std::string::npos);
    EXPECT_NE(text.find("3.5"), std::string::npos);
    EXPECT_NE(text.find("4.25"), std::string::npos);
    EXPECT_EQ(table.row_count(), 2u);
}

TEST(table, csv_output) {
    text_table table("demo", {"x", "y"});
    table.add_row({"1", "2"});
    std::ostringstream out;
    table.print_csv(out);
    EXPECT_EQ(out.str(), "x,y\n1,2\n");
}

TEST(table, rejects_mismatched_row) {
    text_table table("demo", {"x", "y"});
    EXPECT_THROW(table.add_row({"only one"}), invalid_argument);
}

TEST(table, format_double_trims_zeros) {
    EXPECT_EQ(format_double(1.5, 3), "1.5");
    EXPECT_EQ(format_double(2.0, 3), "2");
    EXPECT_EQ(format_double(0.125, 3), "0.125");
}

// -------------------------------------------------------------- units --

TEST(units, db_linear_roundtrip) {
    for (double db : {-30.0, -3.0, 0.0, 10.0, 27.5}) {
        EXPECT_NEAR(linear_to_db(db_to_linear(db)), db, 1e-12);
    }
}

TEST(units, db_reference_points) {
    EXPECT_NEAR(db_to_linear(3.0103), 2.0, 1e-3);
    EXPECT_DOUBLE_EQ(db_to_linear(0.0), 1.0);
    EXPECT_NEAR(db_to_amplitude(6.0206), 2.0, 1e-3);
}

TEST(units, dbm_watt_roundtrip) {
    EXPECT_NEAR(dbm_to_watt(30.0), 1.0, 1e-12);
    EXPECT_NEAR(watt_to_dbm(0.001), 0.0, 1e-12);
    EXPECT_NEAR(watt_to_dbm(dbm_to_watt(-123.0)), -123.0, 1e-9);
}

TEST(units, noise_floor_matches_paper_band) {
    // -174 + 10log10(500 kHz) + 6 = -111 dBm: the floor the -123 dBm
    // SF 9 sensitivity sits 12.5 dB below.
    EXPECT_NEAR(noise_floor_dbm(500e3, 6.0), -111.0, 0.05);
}

}  // namespace
