// Tests for the ASK downlink (§3.3.3): modulation, envelope-detector
// demodulation, and the end-to-end query chain
// (serialize -> ASK -> channel -> envelope detect -> parse).
#include <gtest/gtest.h>

#include <cmath>

#include "netscatter/channel/awgn.hpp"
#include "netscatter/dsp/vector_ops.hpp"
#include "netscatter/mac/query_message.hpp"
#include "netscatter/phy/ask.hpp"
#include "netscatter/util/error.hpp"
#include "netscatter/util/rng.hpp"

namespace {

using ns::dsp::cplx;
using ns::dsp::cvec;
using ns::phy::ask_params;

TEST(ask, airtime_matches_paper_rates) {
    const ask_params params{};
    // 32-bit Config 1 query: 0.2 ms; 1760-bit Config 2 query: 11 ms.
    EXPECT_NEAR(ns::phy::ask_airtime_s(params, 32), 0.2e-3, 1e-9);
    EXPECT_NEAR(ns::phy::ask_airtime_s(params, 1760), 11e-3, 1e-9);
}

TEST(ask, modulate_shapes_amplitudes) {
    ask_params params;
    params.sample_rate_hz = 1.6e6;  // 10 samples per bit
    const cvec samples = ns::phy::ask_modulate(params, {true, false, true});
    ASSERT_EQ(samples.size(), 30u);
    EXPECT_DOUBLE_EQ(std::abs(samples[0]), 1.0);
    EXPECT_DOUBLE_EQ(std::abs(samples[10]), 0.1);
    EXPECT_DOUBLE_EQ(std::abs(samples[20]), 1.0);
}

TEST(ask, clean_roundtrip) {
    const ask_params params{};
    ns::util::rng gen(1);
    const std::vector<bool> bits = gen.bits(64);
    const cvec samples = ns::phy::ask_modulate(params, bits);
    const auto decoded = ns::phy::ask_demodulate(params, samples, 64);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, bits);
}

TEST(ask, roundtrip_with_channel_noise_and_phase) {
    // The envelope detector is phase-blind: a random carrier phase and
    // 10 dB SNR must not break the slicing.
    const ask_params params{};
    ns::util::rng gen(2);
    const std::vector<bool> bits = gen.bits(128);
    cvec samples = ns::phy::ask_modulate(params, bits);
    ns::dsp::scale(samples, std::polar(1.0, 2.1));  // carrier phase
    ns::channel::add_noise(samples, 0.05, gen);     // ~13 dB on the ON level
    const auto decoded = ns::phy::ask_demodulate(params, samples, 128);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, bits);
}

TEST(ask, short_capture_rejected) {
    const ask_params params{};
    const cvec samples = ns::phy::ask_modulate(params, {true, false});
    EXPECT_FALSE(ns::phy::ask_demodulate(params, samples, 10).has_value());
}

TEST(ask, all_ones_burst_decodes_via_half_high_threshold) {
    const ask_params params{};
    const std::vector<bool> bits(16, true);
    const cvec samples = ns::phy::ask_modulate(params, bits);
    const auto decoded = ns::phy::ask_demodulate(params, samples, 16);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, bits);
}

TEST(ask, query_chain_end_to_end) {
    // The full downlink: AP query -> serialize -> ASK -> noisy channel ->
    // envelope detection -> parse. The device must recover the exact
    // assignment the AP sent.
    ns::mac::query_message query;
    query.group_id = 0;
    query.response = ns::mac::association_response{.network_id = 17, .shift_slot = 42};
    const std::vector<bool> bits = ns::mac::serialize(query);

    const ask_params params{};
    ns::util::rng gen(3);
    cvec samples = ns::phy::ask_modulate(params, bits);
    ns::dsp::scale(samples, std::polar(1.0, 0.7));
    ns::channel::add_noise(samples, 0.02, gen);

    const auto decoded = ns::phy::ask_demodulate(params, samples, bits.size());
    ASSERT_TRUE(decoded.has_value());
    const auto parsed = ns::mac::parse_query(*decoded);
    ASSERT_TRUE(parsed.has_value());
    ASSERT_TRUE(parsed->response.has_value());
    EXPECT_EQ(parsed->response->network_id, 17);
    EXPECT_EQ(parsed->response->shift_slot, 42);
}

TEST(ask, heavy_noise_fails_gracefully_at_parse) {
    // At terrible SNR bit errors appear; the query CRC rejects the parse
    // instead of delivering a corrupted assignment.
    ns::mac::query_message query;
    query.group_id = 5;
    const std::vector<bool> bits = ns::mac::serialize(query);
    const ask_params params{};
    ns::util::rng gen(4);
    int corrupted_accepted = 0;
    for (int trial = 0; trial < 30; ++trial) {
        cvec samples = ns::phy::ask_modulate(params, bits);
        ns::channel::add_noise(samples, 2.0, gen);  // ON level ~ -3 dB SNR
        const auto decoded = ns::phy::ask_demodulate(params, samples, bits.size());
        if (!decoded.has_value()) continue;
        const auto parsed = ns::mac::parse_query(*decoded);
        if (parsed.has_value() && *decoded != bits) ++corrupted_accepted;
    }
    EXPECT_EQ(corrupted_accepted, 0);
}

TEST(ask, validates_samples_per_bit) {
    ask_params params;
    params.sample_rate_hz = 200e3;  // ~1.25 samples/bit
    EXPECT_THROW(ns::phy::ask_modulate(params, {true}), ns::util::invalid_argument);
}

}  // namespace
