// Unit tests for ns::sim — deployment generator, timeline models,
// network simulator.
#include <gtest/gtest.h>

#include <cmath>

#include "netscatter/sim/deployment.hpp"
#include "netscatter/sim/network_sim.hpp"
#include "netscatter/sim/timeline.hpp"
#include "netscatter/util/error.hpp"
#include "netscatter/util/stats.hpp"

namespace {

using namespace ns::sim;

// ----------------------------------------------------------- deployment --

TEST(deployment, places_requested_devices_in_bounds) {
    const deployment dep(deployment_params{}, 64, 1);
    ASSERT_EQ(dep.devices().size(), 64u);
    for (const auto& device : dep.devices()) {
        EXPECT_GE(device.x_m, 0.0);
        EXPECT_LE(device.x_m, dep.params().floor_width_m);
        EXPECT_GE(device.y_m, 0.0);
        EXPECT_LE(device.y_m, dep.params().floor_depth_m);
    }
}

TEST(deployment, respects_min_distance) {
    const deployment dep(deployment_params{}, 128, 2);
    for (const auto& device : dep.devices()) {
        const double d = std::hypot(device.x_m - dep.ap_x_m(), device.y_m - dep.ap_y_m());
        EXPECT_GE(d, dep.params().min_distance_m - 1e-9);
    }
}

TEST(deployment, deterministic_per_seed) {
    const deployment a(deployment_params{}, 16, 7);
    const deployment b(deployment_params{}, 16, 7);
    const deployment c(deployment_params{}, 16, 8);
    for (std::size_t i = 0; i < 16; ++i) {
        EXPECT_DOUBLE_EQ(a.devices()[i].x_m, b.devices()[i].x_m);
    }
    bool any_different = false;
    for (std::size_t i = 0; i < 16; ++i) {
        if (a.devices()[i].x_m != c.devices()[i].x_m) any_different = true;
    }
    EXPECT_TRUE(any_different);
}

TEST(deployment, wall_count_geometry) {
    const deployment dep(deployment_params{}, 1, 1);
    // Device in the same room as the AP: zero walls.
    EXPECT_EQ(dep.walls_between(dep.ap_x_m() + 0.5, dep.ap_y_m() + 0.5), 0);
    // A corner device crosses vertical and horizontal interior walls.
    EXPECT_GE(dep.walls_between(0.5, 0.5), 2);
}

TEST(deployment, link_budget_consistency) {
    const deployment dep(deployment_params{}, 64, 3);
    const double floor_dbm = dep.noise_floor_dbm(500e3);
    EXPECT_NEAR(floor_dbm, -111.0, 0.1);
    for (const auto& device : dep.devices()) {
        EXPECT_NEAR(device.query_rssi_dbm,
                    dep.params().ap_tx_dbm - device.oneway_loss_db, 1e-9);
        EXPECT_NEAR(device.uplink_rx_dbm,
                    dep.params().ap_tx_dbm - 2.0 * device.oneway_loss_db -
                        dep.params().conversion_loss_db,
                    1e-9);
        EXPECT_NEAR(device.uplink_snr_db, device.uplink_rx_dbm - floor_dbm, 1e-9);
    }
}

TEST(deployment, near_far_spread_is_tens_of_db) {
    const deployment dep(deployment_params{}, 256, 4);
    double min_snr = 1e9, max_snr = -1e9;
    for (const auto& device : dep.devices()) {
        min_snr = std::min(min_snr, device.uplink_snr_db);
        max_snr = std::max(max_snr, device.uplink_snr_db);
    }
    const double spread = max_snr - min_snr;
    EXPECT_GT(spread, 20.0);
    EXPECT_LT(spread, 60.0);
}

// -------------------------------------------------------------- timeline --

TEST(timeline, query_bits_per_config) {
    EXPECT_EQ(query_bits(query_config::config1), 32u);
    EXPECT_EQ(query_bits(query_config::config2), 1760u);
}

TEST(timeline, round_components) {
    const auto frame = ns::phy::linklayer_format();
    const auto params = ns::phy::deployed_params();
    const round_timing t1 = netscatter_round(frame, params, query_config::config1);
    EXPECT_NEAR(t1.query_time_s, 32.0 / 160e3, 1e-12);       // 0.2 ms
    EXPECT_NEAR(t1.preamble_time_s, 8.0 * 1.024e-3, 1e-9);   // 8.2 ms
    EXPECT_NEAR(t1.payload_time_s, 40.0 * 1.024e-3, 1e-9);   // 41 ms
    const round_timing t2 = netscatter_round(frame, params, query_config::config2);
    EXPECT_NEAR(t2.query_time_s, 11e-3, 0.1e-3);             // §3.3.3: ~11 ms
    EXPECT_GT(t2.total_time_s, t1.total_time_s);
    // Even for config 2 the payload dominates (§4.4 observation).
    EXPECT_GT(t2.payload_time_s + t2.preamble_time_s, t2.query_time_s);
}

TEST(timeline, phy_rate_is_per_device_bitrate_times_delivered) {
    const auto frame = ns::phy::phy_format();
    const auto params = ns::phy::deployed_params();
    const auto metrics =
        netscatter_metrics(frame, params, query_config::config1, 256, 256);
    // 256 devices x 976.5625 bps = 250 kbps: the Fig. 17 ideal endpoint.
    EXPECT_NEAR(metrics.phy_rate_bps, 250e3, 100.0);
}

TEST(timeline, ideal_equals_full_delivery) {
    const auto frame = ns::phy::linklayer_format();
    const auto params = ns::phy::deployed_params();
    const auto ideal =
        netscatter_ideal_metrics(frame, params, query_config::config1, 128);
    const auto full = netscatter_metrics(frame, params, query_config::config1, 128, 128);
    EXPECT_DOUBLE_EQ(ideal.phy_rate_bps, full.phy_rate_bps);
    EXPECT_DOUBLE_EQ(ideal.linklayer_rate_bps, full.linklayer_rate_bps);
}

TEST(timeline, latency_independent_of_population) {
    // The whole point of concurrency: one round serves all devices.
    const auto frame = ns::phy::linklayer_format();
    const auto params = ns::phy::deployed_params();
    const auto m16 = netscatter_metrics(frame, params, query_config::config1, 16, 16);
    const auto m256 = netscatter_metrics(frame, params, query_config::config1, 256, 256);
    EXPECT_DOUBLE_EQ(m16.latency_s, m256.latency_s);
}

// --------------------------------------------------------- network sim --

sim_config fast_sim(std::size_t rounds = 3) {
    sim_config config;
    config.rounds = rounds;
    config.seed = 99;
    return config;
}

TEST(sim_config, validate_accepts_defaults_and_rejects_garbage) {
    EXPECT_NO_THROW(sim_config{}.validate());

    sim_config bad_rounds;
    bad_rounds.rounds = 0;
    EXPECT_THROW(bad_rounds.validate(), ns::util::invalid_argument);

    sim_config bad_skip;
    bad_skip.skip = 0;
    EXPECT_THROW(bad_skip.validate(), ns::util::invalid_argument);

    sim_config huge_skip;
    huge_skip.skip = static_cast<std::uint32_t>(huge_skip.phy.num_bins());
    EXPECT_THROW(huge_skip.validate(), ns::util::invalid_argument);

    sim_config bad_detection;
    bad_detection.detection_factor = 0.0;
    EXPECT_THROW(bad_detection.validate(), ns::util::invalid_argument);

    sim_config bad_padding;
    bad_padding.zero_padding = 0;
    EXPECT_THROW(bad_padding.validate(), ns::util::invalid_argument);

    sim_config bad_rho;
    bad_rho.fading_rho = 1.0;
    EXPECT_THROW(bad_rho.validate(), ns::util::invalid_argument);

    // The simulator validates on construction, so a bad config fails
    // loudly instead of producing garbage results.
    const deployment dep(deployment_params{}, 4, 1);
    sim_config bad;
    bad.rounds = 0;
    EXPECT_THROW(network_simulator(dep, bad), ns::util::invalid_argument);
}

TEST(network_sim, small_network_delivers_everything) {
    const deployment dep(deployment_params{}, 8, 5);
    network_simulator sim(dep, fast_sim());
    const sim_result result = sim.run();
    EXPECT_EQ(result.rounds.size(), 3u);
    EXPECT_GT(result.total_transmitting, 0u);
    EXPECT_GE(result.delivery_rate(), 0.99);
}

TEST(network_sim, allocation_covers_all_devices_distinctly) {
    const deployment dep(deployment_params{}, 32, 6);
    network_simulator sim(dep, fast_sim());
    const auto& allocation = sim.allocation();
    EXPECT_EQ(allocation.size(), 32u);
    std::vector<std::uint32_t> shifts;
    for (const auto& [id, shift] : allocation) shifts.push_back(shift);
    std::sort(shifts.begin(), shifts.end());
    EXPECT_EQ(std::adjacent_find(shifts.begin(), shifts.end()), shifts.end());
}

TEST(network_sim, association_snrs_reflect_gain_choice) {
    const deployment dep(deployment_params{}, 16, 7);
    network_simulator sim(dep, fast_sim());
    // Association SNR = uplink SNR + chosen gain; gains are <= 0 dB, so
    // every association SNR is bounded by the raw uplink SNR.
    const auto& snrs = sim.association_snrs_db();
    ASSERT_EQ(snrs.size(), 16u);
    for (std::size_t i = 0; i < snrs.size(); ++i) {
        EXPECT_LE(snrs[i], dep.devices()[i].uplink_snr_db + 1e-9);
        EXPECT_GE(snrs[i], dep.devices()[i].uplink_snr_db - 10.0 - 1e-9);
    }
}

TEST(network_sim, deterministic_for_same_seed) {
    const deployment dep(deployment_params{}, 8, 8);
    network_simulator a(dep, fast_sim());
    network_simulator b(dep, fast_sim());
    const sim_result ra = a.run();
    const sim_result rb = b.run();
    EXPECT_EQ(ra.total_delivered, rb.total_delivered);
    EXPECT_EQ(ra.total_bit_errors, rb.total_bit_errors);
}

TEST(network_sim, jitter_ablation_does_not_hurt) {
    // Turning hardware timing jitter OFF can only help (or tie) at SKIP=2.
    const deployment dep(deployment_params{}, 48, 9);
    sim_config with_jitter = fast_sim(4);
    sim_config without_jitter = with_jitter;
    without_jitter.model_timing_jitter = false;
    const sim_result rj = network_simulator(dep, with_jitter).run();
    const sim_result rn = network_simulator(dep, without_jitter).run();
    EXPECT_GE(rn.total_delivered + 2, rj.total_delivered);
}

TEST(network_sim, result_accessors_consistent) {
    const deployment dep(deployment_params{}, 8, 10);
    network_simulator sim(dep, fast_sim());
    const sim_result result = sim.run();
    std::size_t delivered = 0, transmitting = 0;
    for (const auto& round : result.rounds) {
        delivered += round.delivered;
        transmitting += round.transmitting;
    }
    EXPECT_EQ(delivered, result.total_delivered);
    EXPECT_EQ(transmitting, result.total_transmitting);
    EXPECT_LE(result.total_delivered, result.total_detected);
    EXPECT_GE(result.mean_delivered_per_round(), 0.0);
}

TEST(network_sim, empty_result_rates_are_zero) {
    sim_result empty;
    EXPECT_DOUBLE_EQ(empty.delivery_rate(), 0.0);
    EXPECT_DOUBLE_EQ(empty.ber(), 0.0);
}

}  // namespace
