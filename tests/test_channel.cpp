// Unit tests for ns::channel — AWGN, path loss, impairments, fading,
// superposition.
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <span>

#include "netscatter/channel/awgn.hpp"
#include "netscatter/channel/fading.hpp"
#include "netscatter/channel/impairments.hpp"
#include "netscatter/channel/pathloss.hpp"
#include "netscatter/channel/superposition.hpp"
#include "netscatter/dsp/peak.hpp"
#include "netscatter/dsp/vector_ops.hpp"
#include "netscatter/phy/chirp.hpp"
#include "netscatter/phy/demodulator.hpp"
#include "netscatter/phy/modulator.hpp"
#include "netscatter/util/error.hpp"
#include "netscatter/util/stats.hpp"

namespace {

using namespace ns::channel;
using ns::dsp::cplx;
using ns::dsp::cvec;

// --------------------------------------------------------------- awgn --

TEST(awgn, noise_power_matches_request) {
    ns::util::rng gen(1);
    const cvec noise = make_noise(100000, 2.5, gen);
    EXPECT_NEAR(ns::dsp::mean_power(noise), 2.5, 0.05);
}

TEST(awgn, noise_is_circular) {
    ns::util::rng gen(2);
    const cvec noise = make_noise(100000, 1.0, gen);
    ns::util::running_stats re, im;
    for (const auto& s : noise) {
        re.add(s.real());
        im.add(s.imag());
    }
    EXPECT_NEAR(re.variance(), 0.5, 0.02);
    EXPECT_NEAR(im.variance(), 0.5, 0.02);
    EXPECT_NEAR(re.mean(), 0.0, 0.02);
}

TEST(awgn, add_noise_for_unit_signal_snr) {
    ns::util::rng gen(3);
    cvec signal(50000, cplx{0.0, 0.0});
    add_noise_for_unit_signal_snr(signal, -10.0, gen);  // noise power 10
    EXPECT_NEAR(ns::dsp::mean_power(signal), 10.0, 0.3);
}

TEST(awgn, noise_power_for_snr_formula) {
    EXPECT_NEAR(noise_power_for_snr(1.0, 20.0), 0.01, 1e-12);
    EXPECT_NEAR(noise_power_for_snr(4.0, -3.0103), 8.0, 1e-3);
}

// ----------------------------------------------------------- pathloss --

TEST(pathloss, increases_with_distance_and_walls) {
    const pathloss_params p{};
    EXPECT_LT(oneway_loss_db(p, 5.0, 0), oneway_loss_db(p, 10.0, 0));
    EXPECT_LT(oneway_loss_db(p, 10.0, 0), oneway_loss_db(p, 10.0, 2));
    EXPECT_NEAR(oneway_loss_db(p, 10.0, 2) - oneway_loss_db(p, 10.0, 0),
                2.0 * p.wall_loss_db, 1e-12);
}

TEST(pathloss, reference_distance_clamps) {
    const pathloss_params p{};
    EXPECT_DOUBLE_EQ(oneway_loss_db(p, 0.5, 0), oneway_loss_db(p, 1.0, 0));
    EXPECT_THROW(oneway_loss_db(p, 0.0, 0), ns::util::invalid_argument);
}

TEST(pathloss, exponent_sets_slope_per_decade) {
    pathloss_params p{};
    p.exponent = 3.0;
    EXPECT_NEAR(oneway_loss_db(p, 100.0, 0) - oneway_loss_db(p, 10.0, 0), 30.0, 1e-9);
}

TEST(pathloss, backscatter_is_roundtrip_plus_conversion) {
    const pathloss_params p{};
    const double oneway = oneway_loss_db(p, 12.0, 1);
    EXPECT_NEAR(backscatter_loss_db(p, 12.0, 1, 6.0), 2.0 * oneway + 6.0, 1e-12);
}

TEST(pathloss, rx_power_budget) {
    // 30 dBm AP, -4 dB gain, 140 dB round trip -> -114 dBm at the AP.
    EXPECT_NEAR(backscatter_rx_power_dbm(30.0, -4.0, 140.0), -114.0, 1e-12);
}

TEST(pathloss, shadowing_produces_spread) {
    pathloss_params p{};
    p.shadowing_sigma_db = 3.0;
    ns::util::rng gen(4);
    ns::util::running_stats stats;
    for (int i = 0; i < 5000; ++i) stats.add(oneway_loss_db(p, 10.0, 0, gen));
    EXPECT_NEAR(stats.stddev(), 3.0, 0.2);
    EXPECT_NEAR(stats.mean(), oneway_loss_db(p, 10.0, 0), 0.2);
}

// -------------------------------------------------------- impairments --

TEST(impairments, hardware_delay_bounded) {
    const hardware_delay_model model{};
    ns::util::rng gen(5);
    for (int i = 0; i < 10000; ++i) {
        const double d = model.sample_s(gen);
        EXPECT_GE(d, 0.0);
        EXPECT_LE(d, model.max_us * 1e-6);
    }
}

TEST(impairments, hardware_delay_can_exceed_one_bin) {
    // §3.2.1: delays up to 3.5 us exceed one FFT bin at 500 kHz (2 us).
    hardware_delay_model model{.mean_us = 3.0, .sigma_us = 0.5, .max_us = 3.5};
    ns::util::rng gen(6);
    int above_one_bin = 0;
    for (int i = 0; i < 1000; ++i) {
        if (model.sample_s(gen) > 2e-6) ++above_one_bin;
    }
    EXPECT_GT(above_one_bin, 900);
}

TEST(impairments, crystal_offset_within_ppm_bound) {
    const crystal_model model{.tolerance_ppm = 50.0, .operating_frequency_hz = 3e6};
    ns::util::rng gen(7);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_LE(std::abs(model.sample_static_offset_hz(gen)), 150.0 + 1e-9);
    }
}

TEST(impairments, backscatter_offsets_90x_smaller_than_radio) {
    // §2.2: same crystal, 900 MHz radio vs <=10 MHz backscatter baseband.
    const crystal_model radio{.tolerance_ppm = 10.0, .operating_frequency_hz = 900e6};
    const crystal_model tag{.tolerance_ppm = 10.0, .operating_frequency_hz = 3e6};
    ns::util::rng gen(8);
    ns::util::running_stats radio_stats, tag_stats;
    for (int i = 0; i < 2000; ++i) {
        radio_stats.add(std::abs(radio.sample_static_offset_hz(gen)));
        tag_stats.add(std::abs(tag.sample_static_offset_hz(gen)));
    }
    EXPECT_NEAR(radio_stats.mean() / tag_stats.mean(), 300.0, 30.0);
}

TEST(impairments, doppler_matches_paper_example) {
    // §4.2: 10 m/s at 900 MHz -> 30 Hz.
    EXPECT_NEAR(doppler_shift_hz(10.0, 900e6), 30.0, 0.1);
}

TEST(impairments, sampled_doppler_bounded_by_speed) {
    ns::util::rng gen(9);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_LE(std::abs(sample_doppler_hz(5.0, 900e6, gen)),
                  doppler_shift_hz(5.0, 900e6) + 1e-9);
    }
}

TEST(impairments, multipath_taps_unit_power) {
    const multipath_model model{};
    ns::util::rng gen(10);
    ns::util::running_stats stats;
    for (int i = 0; i < 3000; ++i) {
        stats.add(ns::dsp::energy(model.sample_taps(500e3, gen)));
    }
    EXPECT_NEAR(stats.mean(), 1.0, 0.05);
}

TEST(impairments, multipath_single_tap_is_identity_up_to_gain) {
    cvec taps = {cplx{0.5, 0.0}};
    const cvec signal = {cplx{1, 0}, cplx{2, 0}, cplx{3, 0}};
    const cvec out = apply_multipath(signal, taps);
    for (std::size_t i = 0; i < signal.size(); ++i) {
        EXPECT_NEAR(std::abs(out[i] - 0.5 * signal[i]), 0.0, 1e-12);
    }
}

TEST(impairments, equivalent_tone_shift_composition) {
    const ns::phy::css_params p = ns::phy::deployed_params();
    // 2 us timing = 1 bin = 976.5625 Hz; 976.5625 Hz CFO = 1 bin more.
    EXPECT_NEAR(equivalent_tone_shift_hz(p, 2e-6, 0.0), 976.5625, 1e-3);
    EXPECT_NEAR(equivalent_tone_shift_hz(p, 2e-6, 976.5625), 2.0 * 976.5625, 1e-3);
    EXPECT_NEAR(equivalent_tone_shift_hz(p, 0.0, -976.5625), -976.5625, 1e-3);
}

TEST(impairments, tone_shift_displaces_decoded_bin) {
    // End-to-end: a +2-bin equivalent shift moves the decoded peak by 2.
    const ns::phy::css_params p = ns::phy::deployed_params();
    const ns::phy::demodulator demod(p, 1);
    cvec symbol = ns::phy::make_upchirp(p, 100.0);
    const double tone = equivalent_tone_shift_hz(p, 4e-6, 0.0);  // 2 bins
    symbol = ns::dsp::frequency_shift(symbol, tone, p.bandwidth_hz);
    const auto power = demod.symbol_power_spectrum(symbol);
    EXPECT_EQ(ns::dsp::argmax(power), 102u);
}

TEST(impairments, tap_powers_decompose_sample_taps) {
    const multipath_model model{};
    const std::vector<double> powers = model.tap_powers(500e3);
    ASSERT_EQ(powers.size(), static_cast<std::size_t>(model.num_taps) + 1);
    double total = 0.0;
    for (const double p : powers) total += p;
    EXPECT_NEAR(total, 1.0, 1e-12);
    // LoS fraction follows the Rician K factor.
    const double k_linear = std::pow(10.0, model.rician_k_db / 10.0);
    EXPECT_NEAR(powers[0], k_linear / (1.0 + k_linear), 1e-12);

    // With no scattered taps the LoS carries everything: the profile
    // stays unit-power at every tap count.
    multipath_model los_only;
    los_only.num_taps = 0;
    const std::vector<double> los_powers = los_only.tap_powers(500e3);
    ASSERT_EQ(los_powers.size(), 1u);
    EXPECT_NEAR(los_powers[0], 1.0, 1e-12);
}

// ----------------------------------------------------- tap delay line --

TEST(tap_delay_line, stationary_unit_power_and_fixed_los) {
    const multipath_model model{};
    ns::util::rng gen(11);
    ns::util::running_stats energy;
    tap_delay_line line(model, 500e3, 0.9, gen.fork());
    const cplx los = line.current()[0];
    for (int round = 0; round < 4000; ++round) {
        const auto taps = line.next();
        EXPECT_EQ(taps[0], los);  // the specular path does not fade
        energy.add(ns::dsp::energy(cvec(taps.begin(), taps.end())));
    }
    EXPECT_NEAR(energy.mean(), 1.0, 0.05);
}

TEST(tap_delay_line, scattered_taps_decorrelate_at_rho) {
    // Ensemble one-step correlation of a scattered tap must track the
    // configured rho (real parts; the AR(1) acts per component).
    const multipath_model model{};
    const double rho = 0.7;
    ns::util::rng gen(12);
    double num = 0.0;
    double den = 0.0;
    for (int device = 0; device < 4000; ++device) {
        tap_delay_line line(model, 500e3, rho, gen.fork());
        const double before = line.current()[1].real();
        const double after = line.next()[1].real();
        num += before * after;
        den += before * before;
    }
    EXPECT_NEAR(num / den, rho, 0.05);
}

TEST(superposition, explicit_unit_tap_matches_flat_channel) {
    // A single unit LoS tap is the identity channel: combine() through
    // the explicit-taps path must reproduce the flat-channel result
    // exactly (same RNG consumption, identity convolution).
    const ns::phy::css_params phy{.bandwidth_hz = 500e3, .spreading_factor = 7};
    const ns::phy::distributed_modulator mod(phy, 12);
    const cvec waveform = mod.modulate_packet({true, false, true, true});

    const cvec unit_taps{cplx{1.0, 0.0}};
    for (const double tone_offset_s : {0.0, 1.3e-6}) {
        tx_contribution flat;
        flat.waveform = std::span<const ns::dsp::cplx>(waveform);
        flat.snr_db = 10.0;
        flat.timing_offset_s = tone_offset_s;
        tx_contribution tapped = flat;
        tapped.taps = unit_taps;

        channel_config config;
        ns::util::rng rng_a(33);
        ns::util::rng rng_b(33);
        channel_workspace ws_a, ws_b;
        const cvec flat_rx =
            combine(std::span<const tx_contribution>(&flat, 1), waveform.size(),
                    phy, config, rng_a, ws_a);
        const cvec tapped_rx =
            combine(std::span<const tx_contribution>(&tapped, 1),
                    waveform.size(), phy, config, rng_b, ws_b);
        ASSERT_EQ(flat_rx.size(), tapped_rx.size());
        double max_error = 0.0;
        for (std::size_t i = 0; i < flat_rx.size(); ++i) {
            max_error = std::max(max_error, std::abs(flat_rx[i] - tapped_rx[i]));
        }
        EXPECT_LT(max_error, 1e-9) << "tone offset " << tone_offset_s;
    }
}

// ------------------------------------------------------------- fading --

TEST(fading, stationary_standard_deviation) {
    gauss_markov_fading fading(2.0, 0.9, ns::util::rng(11));
    ns::util::running_stats stats;
    for (int i = 0; i < 200000; ++i) stats.add(fading.next_db());
    EXPECT_NEAR(stats.stddev(), 2.0, 0.15);
    EXPECT_NEAR(stats.mean(), 0.0, 0.15);
}

TEST(fading, high_rho_is_smooth) {
    gauss_markov_fading smooth(2.0, 0.99, ns::util::rng(12));
    gauss_markov_fading rough(2.0, 0.0, ns::util::rng(12));
    ns::util::running_stats smooth_steps, rough_steps;
    double prev_smooth = smooth.current_db();
    double prev_rough = rough.current_db();
    for (int i = 0; i < 20000; ++i) {
        const double s = smooth.next_db();
        const double r = rough.next_db();
        smooth_steps.add(std::abs(s - prev_smooth));
        rough_steps.add(std::abs(r - prev_rough));
        prev_smooth = s;
        prev_rough = r;
    }
    EXPECT_LT(smooth_steps.mean(), rough_steps.mean() / 3.0);
}

TEST(fading, validates_parameters) {
    EXPECT_THROW(gauss_markov_fading(-1.0, 0.5, ns::util::rng(1)),
                 ns::util::invalid_argument);
    EXPECT_THROW(gauss_markov_fading(1.0, 1.0, ns::util::rng(1)),
                 ns::util::invalid_argument);
}

TEST(fading, skip_one_matches_step_exactly) {
    // skip(1) is the k=1 special case of the exact transition and draws
    // the same innovation as next_db, so from identical state the two
    // must agree bit for bit. skip(0) must not touch the rng.
    gauss_markov_fading stepped(2.0, 0.9, ns::util::rng(21));
    gauss_markov_fading skipped(2.0, 0.9, ns::util::rng(21));
    for (int i = 0; i < 10; ++i) {
        const double via_step = stepped.next_db();
        skipped.skip(0);
        skipped.skip(1);
        EXPECT_EQ(via_step, skipped.current_db());
    }
}

TEST(fading, skip_matches_stepped_distribution) {
    // The k-step transition g[k] | g[0] ~ N(rho^k g[0], sigma^2(1-rho^2k))
    // must reproduce the distribution of k individual steps: same
    // stationary moments and the same lag-k autocorrelation rho^k.
    const double sigma = 2.0;
    const double rho = 0.9;
    const std::uint64_t k = 7;
    const double rho_k = std::pow(rho, static_cast<double>(k));
    ns::util::running_stats stepped_stats, skipped_stats;
    double stepped_corr = 0.0, skipped_corr = 0.0;
    const int trials = 50000;
    gauss_markov_fading stepped(sigma, rho, ns::util::rng(22));
    gauss_markov_fading skipped(sigma, rho, ns::util::rng(23));
    for (int i = 0; i < trials; ++i) {
        const double s0 = stepped.current_db();
        for (std::uint64_t j = 0; j < k; ++j) stepped.next_db();
        stepped_stats.add(stepped.current_db());
        stepped_corr += s0 * stepped.current_db();

        const double q0 = skipped.current_db();
        skipped.skip(k);
        skipped_stats.add(skipped.current_db());
        skipped_corr += q0 * skipped.current_db();
    }
    stepped_corr /= trials * sigma * sigma;
    skipped_corr /= trials * sigma * sigma;
    EXPECT_NEAR(skipped_stats.mean(), stepped_stats.mean(), 0.1);
    EXPECT_NEAR(skipped_stats.stddev(), stepped_stats.stddev(), 0.1);
    EXPECT_NEAR(stepped_corr, rho_k, 0.05);
    EXPECT_NEAR(skipped_corr, rho_k, 0.05);
}

TEST(fading, tap_line_skip_matches_stepped_distribution) {
    // Same contract per scattered tap: after skip(k) each tap is still
    // CN(0, p_i) with lag-k correlation rho^k, and the LoS tap is
    // untouched.
    const multipath_model model{};
    const double rho = 0.8;
    const std::uint64_t k = 5;
    const double rho_k = std::pow(rho, static_cast<double>(k));
    tap_delay_line line(model, 500e3, rho, ns::util::rng(24));
    const std::size_t num_taps = line.current().size();
    ASSERT_GT(num_taps, 1u);
    const cplx los = line.current()[0];
    std::vector<double> power(num_taps, 0.0), corr(num_taps, 0.0);
    const int trials = 20000;
    std::vector<cplx> before(num_taps);
    for (int i = 0; i < trials; ++i) {
        const auto taps0 = line.current();
        std::copy(taps0.begin(), taps0.end(), before.begin());
        line.skip(k);
        const auto taps = line.current();
        for (std::size_t t = 1; t < num_taps; ++t) {
            power[t] += std::norm(taps[t]);
            corr[t] += (before[t] * std::conj(taps[t])).real();
        }
    }
    EXPECT_EQ(line.current()[0], los);
    // Check the strongest scattered tap (later taps carry little power
    // and need far more trials for tight relative bands).
    const double p1 = model.tap_powers(500e3)[1];
    EXPECT_NEAR(power[1] / trials, p1, 0.05 * p1 + 0.01);
    EXPECT_NEAR(corr[1] / (trials * p1), rho_k, 0.05);
}

// ------------------------------------------------------ superposition --

TEST(superposition, single_device_snr_realized) {
    const ns::phy::css_params p = ns::phy::deployed_params();
    ns::util::rng gen(13);
    tx_contribution tx;
    const cvec waveform = ns::phy::make_upchirp(p, 50.0);
    tx.waveform = std::span<const ns::dsp::cplx>(waveform);
    tx.snr_db = 20.0;
    tx.random_phase = false;
    channel_config config;
    config.noise_power = 1.0;
    channel_workspace ws;
    const cvec rx = combine(std::span<const tx_contribution>(&tx, 1),
                            tx.waveform.size(), p, config, gen, ws);
    // Received power ~= signal (100) + noise (1).
    EXPECT_NEAR(ns::dsp::mean_power(rx), 101.0, 5.0);
}

TEST(superposition, two_devices_decodable_at_distinct_bins) {
    const ns::phy::css_params p = ns::phy::deployed_params();
    const ns::phy::demodulator demod(p, 1);
    ns::util::rng gen(14);
    tx_contribution a, b;
    const cvec wave_a = ns::phy::make_upchirp(p, 10.0);
    const cvec wave_b = ns::phy::make_upchirp(p, 300.0);
    a.waveform = std::span<const ns::dsp::cplx>(wave_a);
    a.snr_db = 10.0;
    b.waveform = std::span<const ns::dsp::cplx>(wave_b);
    b.snr_db = 10.0;
    channel_config config;
    const std::array<tx_contribution, 2> txs{a, b};
    channel_workspace ws;
    const cvec rx = combine(std::span<const tx_contribution>(txs),
                            a.waveform.size(), p, config, gen, ws);
    const auto power = demod.symbol_power_spectrum(rx);
    const double noise_ref = power[150];
    EXPECT_GT(power[10], 50.0 * noise_ref);
    EXPECT_GT(power[300], 50.0 * noise_ref);
}

TEST(superposition, timing_offset_moves_peak) {
    const ns::phy::css_params p = ns::phy::deployed_params();
    const ns::phy::demodulator demod(p, 1);
    ns::util::rng gen(15);
    tx_contribution tx;
    const cvec waveform = ns::phy::make_upchirp(p, 100.0);
    tx.waveform = std::span<const ns::dsp::cplx>(waveform);
    tx.snr_db = 30.0;
    tx.timing_offset_s = 4e-6;  // exactly 2 bins at 500 kHz
    channel_config config;
    channel_workspace ws;
    const cvec rx = combine(std::span<const tx_contribution>(&tx, 1),
                            tx.waveform.size(), p, config, gen, ws);
    const auto power = demod.symbol_power_spectrum(rx);
    EXPECT_EQ(ns::dsp::argmax(power), 102u);
}

TEST(superposition, sample_delay_shifts_waveform) {
    const ns::phy::css_params p = ns::phy::deployed_params();
    ns::util::rng gen(16);
    tx_contribution tx;
    const cvec waveform(10, cplx{1.0, 0.0});
    tx.waveform = std::span<const ns::dsp::cplx>(waveform);
    // SNR is relative to the configured noise power: 120 dB over 1e-6
    // noise gives signal power 1e6 (amplitude 1000).
    tx.snr_db = 120.0;
    tx.random_phase = false;
    tx.sample_delay = 5;
    channel_config config;
    config.noise_power = 1e-6;
    channel_workspace ws;
    const cvec rx = combine(std::span<const tx_contribution>(&tx, 1), 20, p,
                            config, gen, ws);
    EXPECT_LT(std::abs(rx[4]), 1.0);
    EXPECT_GT(std::abs(rx[5]), 900.0);
    EXPECT_GT(std::abs(rx[14]), 900.0);
    EXPECT_LT(std::abs(rx[15]), 1.0);
}

TEST(superposition, empty_contributions_is_pure_noise) {
    const ns::phy::css_params p = ns::phy::deployed_params();
    ns::util::rng gen(17);
    channel_config config;
    config.noise_power = 4.0;
    channel_workspace ws;
    const cvec rx = combine(std::span<const tx_contribution>{}, 10000, p,
                            config, gen, ws);
    EXPECT_NEAR(ns::dsp::mean_power(rx), 4.0, 0.3);
}

TEST(superposition, workspace_reuse_is_bit_identical_to_fresh_workspace) {
    // The workspace form reuses the received buffer across rounds; a
    // warm workspace's samples must be bit-identical to a fresh one
    // given the same RNG stream — including the shifted and multipath
    // staging paths.
    const ns::phy::css_params p = ns::phy::deployed_params();
    const cvec wave_a = ns::phy::make_upchirp(p, 40.0);
    const cvec wave_b = ns::phy::make_upchirp(p, 200.0);
    tx_contribution a, b;
    a.waveform = std::span<const ns::dsp::cplx>(wave_a);
    a.snr_db = 12.0;
    a.timing_offset_s = 0.7e-6;  // exercises the fused shifted path
    b.waveform = std::span<const ns::dsp::cplx>(wave_b);
    b.snr_db = 3.0;
    b.sample_delay = 11;
    const std::vector<tx_contribution> txs = {a, b};

    for (const bool multipath : {false, true}) {
        channel_config config;
        config.enable_multipath = multipath;
        ns::util::rng gen_fresh(23);
        channel_workspace fresh_ws;
        const cvec fresh = combine(std::span<const tx_contribution>(txs),
                                   wave_a.size() + 32, p, config, gen_fresh,
                                   fresh_ws);

        ns::util::rng gen_ws(23);
        channel_workspace workspace;
        // Run twice: the second round reuses warm buffers and must not
        // be polluted by the first.
        combine(std::span<const tx_contribution>(txs), wave_a.size() + 32, p,
                config, gen_ws, workspace);
        ns::util::rng gen_ws2(23);
        const cvec& reused = combine(std::span<const tx_contribution>(txs),
                                     wave_a.size() + 32, p, config, gen_ws2,
                                     workspace);
        ASSERT_EQ(fresh.size(), reused.size());
        for (std::size_t i = 0; i < fresh.size(); ++i) {
            ASSERT_EQ(fresh[i], reused[i]) << "sample " << i
                                           << " multipath " << multipath;
        }
    }
}

TEST(superposition, fused_accumulate_matches_staged_sequence) {
    // accumulate_scaled_shifted must be bit-identical to the historic
    // frequency_shift -> scale -> accumulate_at staging it replaced.
    ns::util::rng gen(29);
    cvec source(3000);
    for (auto& v : source) v = cplx{gen.gaussian(), gen.gaussian()};
    const cplx gain{0.8, -0.3};
    const double tone_hz = 173.0;
    const double fs = 500e3;

    cvec staged = ns::dsp::frequency_shift(source, tone_hz, fs);
    ns::dsp::scale(staged, gain);
    cvec expected(3100, cplx{0.0, 0.0});
    ns::dsp::accumulate_at(expected, staged, 17);

    cvec fused(3100, cplx{0.0, 0.0});
    ns::dsp::accumulate_scaled_shifted(fused, source, gain, tone_hz, fs, 17);
    for (std::size_t i = 0; i < expected.size(); ++i) {
        ASSERT_EQ(expected[i], fused[i]) << "sample " << i;
    }
}

TEST(superposition, symbol_domain_single_device_spectra_match_demodulator) {
    // End-to-end fast-path check: with (near-)zero noise, the symbol
    // spectra of one packet must match dechirp + padded FFT of the
    // time-domain synthesis, symbol by symbol.
    const ns::phy::css_params p{.bandwidth_hz = 500e3, .spreading_factor = 7};
    const ns::phy::demodulator demod(p, 4);
    const std::uint32_t shift = 30;
    const std::vector<bool> bits = {true, false, true, true, false, false, true, false};
    const ns::phy::distributed_modulator mod(p, shift);
    cvec packet = mod.modulate_packet(bits);
    const double tone_hz = 95.0;
    packet = ns::dsp::frequency_shift(packet, tone_hz, p.bandwidth_hz);

    std::vector<std::uint8_t> frame_bits;
    for (bool bit : bits) frame_bits.push_back(bit ? 1 : 0);
    packet_contribution contribution;
    contribution.cyclic_shift = shift;
    contribution.frame_bits = frame_bits;
    contribution.snr_db = 200.0;  // signal streets ahead of the epsilon noise
    contribution.frequency_offset_hz = tone_hz;
    contribution.random_phase = false;

    channel_config config;
    config.noise_power = 1e-18;
    symbol_domain_params sd;
    sd.zero_padding = 4;
    sd.payload_symbols = bits.size();
    sd.kernel_radius_bins = p.num_bins() / 2;  // untruncated
    ns::util::rng gen(31);
    channel_workspace workspace;
    const std::vector<packet_contribution> packets = {contribution};
    combine_symbol_domain(packets, p, config, sd, gen, workspace);

    const double amplitude = std::sqrt(config.noise_power) * 1e10;  // 200 dB
    const std::size_t sps = p.samples_per_symbol();
    ASSERT_EQ(workspace.symbol_spectra.size(), sd.preamble_upchirps + bits.size());
    for (std::size_t g = 0; g < sd.preamble_upchirps + bits.size(); ++g) {
        // Symbol index within the full packet (downchirps skipped).
        const std::size_t packet_symbol =
            g < sd.preamble_upchirps ? g : sd.preamble_symbols + (g - sd.preamble_upchirps);
        const cvec window(packet.begin() + static_cast<std::ptrdiff_t>(
                                               packet_symbol * sps),
                          packet.begin() + static_cast<std::ptrdiff_t>(
                                               (packet_symbol + 1) * sps));
        const cvec expected = demod.symbol_spectrum(window);
        const cvec& produced = workspace.symbol_spectra[g];
        ASSERT_EQ(produced.size(), expected.size());
        double max_error = 0.0;
        for (std::size_t m = 0; m < expected.size(); ++m) {
            max_error = std::max(max_error,
                                 std::abs(produced[m] - amplitude * expected[m]));
        }
        // Relative to the peak magnitude amplitude * N.
        EXPECT_LT(max_error, 1e-6 * amplitude * static_cast<double>(p.num_bins()))
            << "symbol " << g;
    }
}

}  // namespace
