// The declarative spec layer's contracts.
//
// Parser diagnostics (unknown key, duplicate key, type mismatch,
// out-of-domain — each a distinct error naming the offending line),
// the serialize→parse→serialize fixed point over every builtin
// scenario, the committed specs/*.spec files as a byte-exact oracle of
// the C++ registry table, the registry-over-files loader, the --vary
// override primitive, and the Cartesian sweep engine's expansion order
// and thread-count invariance.
#include <gtest/gtest.h>

#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "netscatter/scenario/scenario_registry.hpp"
#include "netscatter/scenario/scenario_runner.hpp"
#include "netscatter/spec/spec_codec.hpp"
#include "netscatter/spec/sweep.hpp"

namespace {

using namespace ns::scenario;
using namespace ns::spec;

/// Parses `text` expecting a spec_error whose message contains every
/// needle; returns the message for further checks.
std::string expect_parse_error(const std::string& text,
                               const std::vector<std::string>& needles) {
    try {
        parse_spec_text_as_scenario(text, "test.spec");
    } catch (const spec_error& error) {
        const std::string what = error.what();
        for (const auto& needle : needles) {
            EXPECT_NE(what.find(needle), std::string::npos)
                << "missing '" << needle << "' in: " << what;
        }
        return what;
    }
    ADD_FAILURE() << "no spec_error for: " << text;
    return {};
}

// --------------------------------------------------------- diagnostics --

TEST(spec_parser, unknown_key_names_the_offending_line) {
    expect_parse_error("name = \"x\"\ngeometry.num_device = 4\n",
                       {"test.spec:2:", "unknown key 'geometry.num_device'"});
}

TEST(spec_parser, duplicate_key_names_both_lines) {
    expect_parse_error(
        "name = \"x\"\n\nsim.rounds = 3\nsim.rounds = 4\n",
        {"test.spec:4:", "duplicate key 'sim.rounds'", "line 3"});
}

TEST(spec_parser, type_mismatch_is_a_distinct_error) {
    expect_parse_error("sim.rounds = fast\n",
                       {"test.spec:1:", "expected", "integer", "'fast'"});
    expect_parse_error("traffic.duty_cycle = high\n",
                       {"test.spec:1:", "expected", "real", "'high'"});
    expect_parse_error("cochannel.enabled = yes\n",
                       {"test.spec:1:", "boolean", "'yes'"});
    expect_parse_error("traffic.kind = firehose\n",
                       {"test.spec:1:", "one of", "'firehose'"});
    expect_parse_error("name = unquoted\n",
                       {"test.spec:1:", "quoted string"});
}

TEST(spec_parser, out_of_domain_value_is_a_distinct_error) {
    expect_parse_error("traffic.duty_cycle = 1.5\n",
                       {"test.spec:1:", "out of domain", "[0, 1]"});
    expect_parse_error("sim.rounds = 0\n", {"test.spec:1:", "out of domain"});
    expect_parse_error("sim.phy.bandwidth_hz = -1\n",
                       {"test.spec:1:", "out of domain"});
}

TEST(spec_parser, malformed_lines_fail_with_line_numbers) {
    expect_parse_error("sim.rounds\n", {"test.spec:1:", "malformed line"});
    expect_parse_error("name = \"open\n", {"test.spec:1:", "unterminated"});
    expect_parse_error("sim.rounds =\n", {"test.spec:1:", "missing value"});
}

TEST(spec_parser, cross_field_validation_carries_the_source) {
    // Window ordering is only checkable once both keys are read, so the
    // error carries the file (no single line).
    expect_parse_error(
        "churn.aloha_initial_window = 8\nchurn.aloha_max_window = 4\n",
        {"test.spec", "aloha_max_window"});
}

// --------------------------------------------------------- fixed point --

TEST(spec_codec, serialize_parse_serialize_is_a_fixed_point_for_every_builtin) {
    for (const auto& spec : builtin_registry()) {
        const std::string once = serialize_spec(spec);
        const scenario_spec parsed =
            parse_spec_text_as_scenario(once, spec.name);
        const std::string twice = serialize_spec(parsed);
        EXPECT_EQ(once, twice) << spec.name;
    }
}

TEST(spec_codec, optional_fields_round_trip_in_both_presence_states) {
    scenario_spec spec;
    spec.name = "opt";
    spec.description = "optional fields";
    const std::string absent = serialize_spec(spec);
    EXPECT_EQ(absent.find("geometry.floor_width_m"), std::string::npos);

    spec.geometry.floor_width_m = 12.5;
    spec.geometry.rooms_x = 3;
    const std::string present = serialize_spec(spec);
    EXPECT_NE(present.find("geometry.floor_width_m = 12.5"),
              std::string::npos);
    const scenario_spec parsed =
        parse_spec_text_as_scenario(present, "opt.spec");
    ASSERT_TRUE(parsed.geometry.floor_width_m.has_value());
    EXPECT_DOUBLE_EQ(*parsed.geometry.floor_width_m, 12.5);
    ASSERT_TRUE(parsed.geometry.rooms_x.has_value());
    EXPECT_EQ(*parsed.geometry.rooms_x, 3u);
    EXPECT_FALSE(parsed.geometry.floor_depth_m.has_value());
    EXPECT_EQ(serialize_spec(parsed), present);
}

TEST(spec_codec, strings_with_escapes_and_initial_active_all_round_trip) {
    scenario_spec spec;
    spec.name = "esc";
    spec.description = "quotes \" and \\ and\nnewlines\ttabs";
    spec.churn.initial_active = static_cast<std::size_t>(-1);  // "all"
    const std::string text = serialize_spec(spec);
    EXPECT_NE(text.find("churn.initial_active = all"), std::string::npos);
    const scenario_spec parsed = parse_spec_text_as_scenario(text, "esc.spec");
    EXPECT_EQ(parsed.description, spec.description);
    EXPECT_EQ(parsed.churn.initial_active, spec.churn.initial_active);
    EXPECT_EQ(serialize_spec(parsed), text);
}

// -------------------------------------------------- files as the oracle --

std::string read_file(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << path;
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

TEST(spec_files, every_committed_spec_equals_its_builtin_serialization) {
    // The drift gate: regenerating any committed file must be a no-op.
    for (const auto& spec : builtin_registry()) {
        const std::string path = spec_dir() + "/" + spec.name + ".spec";
        EXPECT_EQ(read_file(path), serialize_spec(spec)) << path;
    }
}

TEST(spec_files, registry_serves_the_files_and_matches_the_builtin_table) {
    const auto& loaded = registry();
    const auto& sources = registry_sources();
    ASSERT_EQ(loaded.size(), sources.size());
    ASSERT_EQ(loaded.size(), builtin_registry().size());

    std::set<std::string> loaded_names;
    for (std::size_t i = 0; i < loaded.size(); ++i) {
        loaded_names.insert(loaded[i].name);
        EXPECT_NE(sources[i], "<builtin>") << loaded[i].name;
        // Each loaded spec equals the builtin of the same name,
        // field-for-field (via the injective serialization).
        const auto builtin = [&]() -> const scenario_spec* {
            for (const auto& b : builtin_registry()) {
                if (b.name == loaded[i].name) return &b;
            }
            return nullptr;
        }();
        ASSERT_NE(builtin, nullptr) << loaded[i].name;
        EXPECT_EQ(serialize_spec(loaded[i]), serialize_spec(*builtin))
            << loaded[i].name;
    }
    EXPECT_EQ(loaded_names.size(), loaded.size());
}

/// Determinism digest for cheap end-to-end comparisons.
std::string digest(const scenario_result& result) {
    std::ostringstream out;
    out.precision(17);
    const auto& s = result.sim;
    out << s.total_transmitting << ' ' << s.total_delivered << ' '
        << s.total_bit_errors << ' ' << s.total_bits << ' ' << s.total_joins
        << ' ' << s.total_leaves << ' ' << s.total_skipped << ' '
        << s.total_idle;
    for (const auto& round : s.rounds) {
        out << ';' << round.active << ',' << round.delivered << ','
            << round.bit_errors;
    }
    return out.str();
}

TEST(spec_files, a_file_loaded_scenario_runs_identically_to_the_builtin) {
    const auto loaded = find_scenario("office-256");
    ASSERT_TRUE(loaded.has_value());
    scenario_spec from_file = *loaded;
    scenario_spec from_cpp;
    for (const auto& b : builtin_registry()) {
        if (b.name == "office-256") from_cpp = b;
    }
    for (scenario_spec* spec : {&from_file, &from_cpp}) {
        spec->sim.rounds = 3;
        spec->replicas = 2;
        spec->geometry.num_devices = 48;
    }
    EXPECT_EQ(digest(run_scenario(from_file)), digest(run_scenario(from_cpp)));
}

// ------------------------------------------------------------ overrides --

TEST(spec_override, applies_valid_assignments_and_rejects_bad_ones) {
    scenario_spec spec;
    apply_spec_override(spec, "geometry.num_devices", "512", "--vary");
    EXPECT_EQ(spec.geometry.num_devices, 512u);
    apply_spec_override(spec, "sim.fidelity", "symbol", "--vary");
    EXPECT_EQ(spec.sim.fidelity, ns::sim::phy_fidelity::symbol);
    apply_spec_override(spec, "churn.initial_active", "all", "--vary");
    EXPECT_EQ(spec.churn.initial_active, static_cast<std::size_t>(-1));

    EXPECT_THROW(apply_spec_override(spec, "nope.nope", "1", "--vary"),
                 spec_error);
    EXPECT_THROW(
        apply_spec_override(spec, "traffic.duty_cycle", "2", "--vary"),
        spec_error);
    EXPECT_THROW(apply_spec_override(spec, "sim.rounds", "x", "--vary"),
                 spec_error);
}

// --------------------------------------------------------------- schema --

TEST(spec_schema, keys_are_unique_and_fully_described) {
    std::set<std::string> keys;
    for (const auto& info : spec_schema()) {
        EXPECT_TRUE(keys.insert(info.key).second) << info.key;
        EXPECT_FALSE(info.type.empty()) << info.key;
        EXPECT_FALSE(info.default_value.empty()) << info.key;
    }
    EXPECT_GE(keys.size(), 70u);
}

// ---------------------------------------------------------------- sweep --

TEST(sweep, axis_parsing_covers_lists_ranges_and_errors) {
    const sweep_axis list = parse_sweep_axis("sim.skip=2,4,8");
    EXPECT_EQ(list.key, "sim.skip");
    EXPECT_EQ(list.values, (std::vector<std::string>{"2", "4", "8"}));

    const sweep_axis range = parse_sweep_axis("sim.phy.spreading_factor=9..12");
    EXPECT_EQ(range.values,
              (std::vector<std::string>{"9", "10", "11", "12"}));

    const sweep_axis stepped = parse_sweep_axis("geometry.num_devices=64..192..64");
    EXPECT_EQ(stepped.values, (std::vector<std::string>{"64", "128", "192"}));

    EXPECT_THROW(parse_sweep_axis("sim.skip"), spec_error);
    EXPECT_THROW(parse_sweep_axis("no.such.key=1"), spec_error);
    EXPECT_THROW(parse_sweep_axis("sim.skip="), spec_error);
    EXPECT_THROW(parse_sweep_axis("sim.skip=1,,2"), spec_error);
    EXPECT_THROW(parse_sweep_axis("sim.skip=4..2"), spec_error);
}

TEST(sweep, expansion_is_row_major_with_the_last_axis_fastest) {
    scenario_spec base;
    base.name = "grid";
    base.description = "grid";
    const std::vector<sweep_axis> axes = {
        {"geometry.num_devices", {"16", "32"}},
        {"sim.rounds", {"2", "3", "4"}},
    };
    const auto cells = expand_sweep(base, axes);
    ASSERT_EQ(cells.size(), 6u);
    EXPECT_EQ(cells[0].spec.geometry.num_devices, 16u);
    EXPECT_EQ(cells[0].spec.sim.rounds, 2u);
    EXPECT_EQ(cells[1].spec.sim.rounds, 3u);  // last axis advances first
    EXPECT_EQ(cells[2].spec.sim.rounds, 4u);
    EXPECT_EQ(cells[3].spec.geometry.num_devices, 32u);
    EXPECT_EQ(cells[3].spec.sim.rounds, 2u);
    EXPECT_EQ(cells[5].index, 5u);
    EXPECT_EQ(cells[4].label, "geometry.num_devices=32 sim.rounds=3");

    // A bad cell value fails at expansion, before anything runs.
    EXPECT_THROW(
        expand_sweep(base, {{"traffic.duty_cycle", {"0.5", "2.0"}}}),
        spec_error);
}

TEST(sweep, product_results_are_bit_identical_serial_vs_8_threads) {
    scenario_spec base;
    for (const auto& b : builtin_registry()) {
        if (b.name == "office-256") base = b;
    }
    base.sim.rounds = 2;
    base.replicas = 2;
    base.geometry.num_devices = 32;
    const auto cells = expand_sweep(
        base, {parse_sweep_axis("geometry.num_devices=24,32"),
               parse_sweep_axis("sim.seed=1,2")});
    ASSERT_EQ(cells.size(), 4u);

    const auto serial = run_sweep(cells, {.num_threads = 1, .parallel = false});
    const auto threaded = run_sweep(cells, {.num_threads = 8, .parallel = true});
    ASSERT_EQ(serial.size(), threaded.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(digest(serial[i]), digest(threaded[i])) << "cell " << i;
    }

    // And each sweep cell equals the standalone runner on the same spec:
    // the fan-out changes scheduling, never results.
    for (std::size_t i = 0; i < cells.size(); ++i) {
        EXPECT_EQ(digest(serial[i]), digest(run_scenario(cells[i].spec)))
            << "cell " << i;
    }
}

}  // namespace
