// Unit tests for ns::engine — thread pool, deterministic Monte-Carlo
// runner, FFT plan cache.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <vector>

#include "netscatter/dsp/fft.hpp"
#include "netscatter/engine/fft_plan.hpp"
#include "netscatter/engine/mc_runner.hpp"
#include "netscatter/engine/thread_pool.hpp"
#include "netscatter/util/error.hpp"
#include "netscatter/util/rng.hpp"

namespace {

using namespace ns::engine;

// ---------------------------------------------------------- thread_pool --

TEST(thread_pool, submit_returns_results) {
    thread_pool pool(4);
    EXPECT_EQ(pool.size(), 4u);
    auto a = pool.submit([] { return 19; });
    auto b = pool.submit([] { return std::string("netscatter"); });
    EXPECT_EQ(a.get(), 19);
    EXPECT_EQ(b.get(), "netscatter");
}

TEST(thread_pool, zero_means_hardware_concurrency) {
    thread_pool pool(0);
    EXPECT_EQ(pool.size(), thread_pool::default_thread_count());
    EXPECT_GE(pool.size(), 1u);
}

TEST(thread_pool, parallel_for_visits_every_index_once) {
    thread_pool pool(4);
    constexpr std::size_t n = 1000;
    std::vector<std::atomic<int>> visits(n);
    pool.parallel_for(0, n, [&](std::size_t i) { ++visits[i]; }, /*grain=*/7);
    for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(visits[i].load(), 1) << i;
}

TEST(thread_pool, parallel_for_empty_range_is_noop) {
    thread_pool pool(2);
    bool ran = false;
    pool.parallel_for(5, 5, [&](std::size_t) { ran = true; });
    EXPECT_FALSE(ran);
}

TEST(thread_pool, submit_propagates_exceptions) {
    thread_pool pool(2);
    auto future = pool.submit([]() -> int {
        throw std::runtime_error("task failed");
    });
    EXPECT_THROW(future.get(), std::runtime_error);
    // The pool survives a throwing task.
    EXPECT_EQ(pool.submit([] { return 7; }).get(), 7);
}

TEST(thread_pool, parallel_for_propagates_exceptions) {
    thread_pool pool(4);
    std::atomic<int> completed{0};
    EXPECT_THROW(
        pool.parallel_for(0, 64,
                          [&](std::size_t i) {
                              if (i == 13) throw std::runtime_error("iteration 13");
                              ++completed;
                          }),
        std::runtime_error);
    // Every other iteration still ran (no early abandonment).
    EXPECT_EQ(completed.load(), 63);
}

TEST(thread_pool, queued_tasks_finish_before_shutdown) {
    std::atomic<int> sum{0};
    {
        thread_pool pool(2);
        for (int i = 0; i < 100; ++i) {
            pool.submit([&sum] { ++sum; });
        }
        pool.shutdown();
        EXPECT_EQ(sum.load(), 100);
    }
}

TEST(thread_pool, submit_after_shutdown_throws) {
    thread_pool pool(1);
    pool.shutdown();
    EXPECT_THROW(pool.submit([] { return 1; }), ns::util::invalid_state);
}

// ----------------------------------------------------------- split_seed --

TEST(split_seed, deterministic_and_distinct) {
    EXPECT_EQ(split_seed(1, 2, 3), split_seed(1, 2, 3));
    std::set<std::uint64_t> seen;
    for (std::uint64_t base : {0ULL, 1ULL, 42ULL}) {
        for (std::uint64_t stream = 0; stream < 4; ++stream) {
            for (std::uint64_t block = 0; block < 8; ++block) {
                seen.insert(split_seed(base, stream, block));
            }
        }
    }
    EXPECT_EQ(seen.size(), 3u * 4u * 8u);  // no collisions across the grid
}

// ------------------------------------------------------------ mc_runner --

ns::sim::sim_config small_sim_config() {
    ns::sim::sim_config config;
    config.phy = ns::phy::css_params{.bandwidth_hz = 500e3, .spreading_factor = 7};
    config.rounds = 4;
    config.seed = 99;
    config.zero_padding = 4;
    return config;
}

void expect_same_result(const ns::sim::sim_result& a, const ns::sim::sim_result& b) {
    EXPECT_EQ(a.total_transmitting, b.total_transmitting);
    EXPECT_EQ(a.total_delivered, b.total_delivered);
    EXPECT_EQ(a.total_detected, b.total_detected);
    EXPECT_EQ(a.total_bit_errors, b.total_bit_errors);
    EXPECT_EQ(a.total_bits, b.total_bits);
    ASSERT_EQ(a.rounds.size(), b.rounds.size());
    for (std::size_t r = 0; r < a.rounds.size(); ++r) {
        EXPECT_EQ(a.rounds[r].transmitting, b.rounds[r].transmitting) << r;
        EXPECT_EQ(a.rounds[r].skipped, b.rounds[r].skipped) << r;
        EXPECT_EQ(a.rounds[r].detected, b.rounds[r].detected) << r;
        EXPECT_EQ(a.rounds[r].delivered, b.rounds[r].delivered) << r;
        EXPECT_EQ(a.rounds[r].bit_errors, b.rounds[r].bit_errors) << r;
        EXPECT_EQ(a.rounds[r].bits_sent, b.rounds[r].bits_sent) << r;
    }
}

TEST(mc_runner, parallel_bit_identical_to_serial) {
    const ns::sim::deployment dep(ns::sim::deployment_params{}, 6, 11);
    const ns::sim::sim_config config = small_sim_config();

    mc_options serial{.rounds_per_task = 1, .num_threads = 0, .parallel = false};
    mc_options parallel{.rounds_per_task = 1, .num_threads = 4, .parallel = true};
    const ns::sim::sim_result a = mc_runner(serial).run(dep, config);
    const ns::sim::sim_result b = mc_runner(parallel).run(dep, config);

    ASSERT_EQ(a.rounds.size(), config.rounds);
    expect_same_result(a, b);
}

TEST(mc_runner, matches_manual_block_decomposition) {
    // The runner's result must equal running each block's simulator by
    // hand with the split seeds and merging in order.
    const ns::sim::deployment dep(ns::sim::deployment_params{}, 4, 12);
    ns::sim::sim_config config = small_sim_config();
    config.rounds = 3;

    mc_options options{.rounds_per_task = 2, .num_threads = 2, .parallel = true};
    const ns::sim::sim_result runner_result = mc_runner(options).run(dep, config);

    ns::sim::sim_result manual;
    const std::size_t blocks[] = {2, 1};  // 3 rounds in blocks of 2
    for (std::size_t b = 0; b < 2; ++b) {
        ns::sim::sim_config block_config = config;
        block_config.rounds = blocks[b];
        block_config.seed = split_seed(config.seed, 0, b);
        ns::sim::network_simulator sim(dep, block_config);
        manual.merge(sim.run());
    }
    expect_same_result(runner_result, manual);
}

TEST(mc_runner, run_batch_matches_per_job_runs) {
    std::vector<mc_job> jobs;
    for (std::size_t n : {3, 5}) {
        mc_job job;
        job.num_devices = n;
        job.deployment_seed = 7;
        job.config = small_sim_config();
        job.config.rounds = 2;
        jobs.push_back(job);
    }

    mc_options parallel{.rounds_per_task = 1, .num_threads = 3, .parallel = true};
    mc_options serial = parallel;
    serial.parallel = false;
    const auto par = mc_runner(parallel).run_batch(jobs);
    const auto ser = mc_runner(serial).run_batch(jobs);
    ASSERT_EQ(par.results.size(), 2u);
    ASSERT_EQ(ser.results.size(), 2u);
    ASSERT_EQ(par.deployments.size(), 2u);
    EXPECT_EQ(par.deployments[1].devices().size(), 5u);
    for (std::size_t j = 0; j < jobs.size(); ++j) {
        expect_same_result(par.results[j], ser.results[j]);
    }

    // A single-job batch agrees with run() on the same deployment.
    const ns::sim::deployment dep(jobs[0].dep_params, jobs[0].num_devices,
                                  jobs[0].deployment_seed);
    const auto direct = mc_runner(parallel).run(dep, jobs[0].config);
    expect_same_result(par.results[0], direct);
}

TEST(mc_runner, default_keeps_whole_job_in_one_block) {
    // rounds_per_task = 0 (the default) must not split the job: the
    // result equals one network_simulator carrying state across all
    // rounds, seeded with the job's single block seed.
    const ns::sim::deployment dep(ns::sim::deployment_params{}, 5, 13);
    const ns::sim::sim_config config = small_sim_config();

    const ns::sim::sim_result runner_result = mc_runner().run(dep, config);

    ns::sim::sim_config whole = config;
    whole.seed = split_seed(config.seed, 0, 0);
    ns::sim::network_simulator sim(dep, whole);
    expect_same_result(runner_result, sim.run());
}

// ------------------------------------------------------------- fft_plan --

ns::dsp::cvec random_vector(std::size_t n, std::uint64_t seed) {
    ns::util::rng gen(seed);
    ns::dsp::cvec v(n);
    for (auto& x : v) x = ns::dsp::cplx{gen.gaussian(), gen.gaussian()};
    return v;
}

TEST(fft_plan, rejects_non_power_of_two) {
    EXPECT_THROW(fft_plan(12), ns::util::invalid_argument);
    EXPECT_THROW(fft_plan(0), ns::util::invalid_argument);
}

TEST(fft_plan, forward_matches_uncached_fft_api) {
    // The plan path and the plan-free path must agree bit-for-bit: they
    // execute the same butterfly code over the same tables.
    for (const std::size_t n : {1u, 2u, 8u, 64u, 512u, 4096u}) {
        const ns::dsp::cvec input = random_vector(n, 1000 + n);

        ns::dsp::set_fft_plan_caching(false);
        const ns::dsp::cvec uncached = ns::dsp::fft(input);
        ns::dsp::set_fft_plan_caching(true);
        const ns::dsp::cvec cached = ns::dsp::fft(input);

        ASSERT_EQ(uncached.size(), cached.size());
        for (std::size_t i = 0; i < n; ++i) {
            EXPECT_EQ(uncached[i].real(), cached[i].real()) << n << ":" << i;
            EXPECT_EQ(uncached[i].imag(), cached[i].imag()) << n << ":" << i;
        }
    }
}

TEST(fft_plan, inverse_roundtrip) {
    const std::size_t n = 256;
    const ns::dsp::cvec input = random_vector(n, 5);
    ns::dsp::cvec data = input;
    const fft_plan plan(n);
    plan.forward(data);
    plan.inverse(data);
    for (std::size_t i = 0; i < n; ++i) {
        EXPECT_NEAR(data[i].real(), input[i].real(), 1e-9);
        EXPECT_NEAR(data[i].imag(), input[i].imag(), 1e-9);
    }
}

TEST(fft_plan, plan_rejects_mismatched_size) {
    const fft_plan plan(64);
    ns::dsp::cvec data(32);
    EXPECT_THROW(plan.forward(data), ns::util::invalid_argument);
}

TEST(fft_plan, cache_shares_one_plan_per_size) {
    auto& cache = fft_plan_cache::instance();
    const auto a = cache.get(1024);
    const auto b = cache.get(1024);
    EXPECT_EQ(a.get(), b.get());
    EXPECT_GE(cache.cached_sizes(), 1u);
}

TEST(fft_plan, thread_scratch_resizes) {
    auto& small = fft_plan_cache::thread_scratch(16);
    EXPECT_EQ(small.size(), 16u);
    auto& big = fft_plan_cache::thread_scratch(64);
    EXPECT_EQ(big.size(), 64u);
}

TEST(fft_plan, concurrent_transforms_are_correct) {
    // Many threads hammering the same cached plan must all get the right
    // answer (shared plans are immutable; scratch is per-thread).
    const std::size_t n = 512;
    const ns::dsp::cvec input = random_vector(n, 77);
    const ns::dsp::cvec expected = ns::dsp::fft(input);

    thread_pool pool(8);
    std::atomic<int> mismatches{0};
    pool.parallel_for(0, 64, [&](std::size_t) {
        const ns::dsp::cvec out = ns::dsp::fft(input);
        for (std::size_t i = 0; i < n; ++i) {
            if (out[i] != expected[i]) ++mismatches;
        }
    });
    EXPECT_EQ(mismatches.load(), 0);
}

}  // namespace
