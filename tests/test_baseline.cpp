// Unit tests for ns::baseline — LoRa backscatter link + TDMA accounting
// and the Choir comparator.
#include <gtest/gtest.h>

#include <cmath>

#include "netscatter/baseline/choir.hpp"
#include "netscatter/baseline/lora_link.hpp"
#include "netscatter/channel/awgn.hpp"
#include "netscatter/util/error.hpp"
#include "netscatter/util/rng.hpp"

namespace {

using namespace ns::baseline;
using ns::dsp::cvec;

// ---------------------------------------------------------- lora link --

TEST(lora_link, fixed_rate_matches_paper) {
    EXPECT_NEAR(fixed_rate_params().lora_bitrate_bps(), 8789.0, 1.0);  // ~8.7 kbps
}

TEST(lora_link, packet_roundtrip_clean) {
    lora_link link(fixed_rate_params());
    ns::util::rng gen(1);
    const std::vector<bool> payload = gen.bits(link.frame().payload_bits);
    const cvec packet = link.modulate_packet(payload);
    const auto decoded = link.demodulate_packet(packet);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, payload);
}

TEST(lora_link, packet_roundtrip_below_noise) {
    lora_link link(fixed_rate_params());
    ns::util::rng gen(2);
    int delivered = 0;
    for (int trial = 0; trial < 10; ++trial) {
        const std::vector<bool> payload = gen.bits(link.frame().payload_bits);
        cvec packet = link.modulate_packet(payload);
        ns::channel::add_noise_for_unit_signal_snr(packet, -10.0, gen);
        const auto decoded = link.demodulate_packet(packet);
        if (decoded.has_value() && *decoded == payload) ++delivered;
    }
    EXPECT_GE(delivered, 9);
}

TEST(lora_link, heavy_noise_fails_crc_not_false_decode) {
    lora_link link(fixed_rate_params());
    ns::util::rng gen(3);
    int wrong_payload = 0;
    for (int trial = 0; trial < 20; ++trial) {
        const std::vector<bool> payload = gen.bits(link.frame().payload_bits);
        cvec packet = link.modulate_packet(payload);
        ns::channel::add_noise_for_unit_signal_snr(packet, -30.0, gen);
        const auto decoded = link.demodulate_packet(packet);
        if (decoded.has_value() && *decoded != payload) ++wrong_payload;
    }
    // The CRC makes undetected wrong payloads rare.
    EXPECT_LE(wrong_payload, 1);
}

TEST(lora_link, short_input_rejected) {
    lora_link link(fixed_rate_params());
    EXPECT_FALSE(link.demodulate_packet(cvec(100)).has_value());
}

TEST(lora_link, airtime_matches_symbol_count) {
    lora_link link(fixed_rate_params());
    // 8 preamble + ceil(40/9) = 5 payload symbols at 1.024 ms.
    EXPECT_NEAR(link.packet_airtime_s(), 13.0 * 1.024e-3, 1e-9);
}

// ------------------------------------------------------ tdma accounting --

TEST(tdma, fixed_rate_round_times) {
    const auto frame = ns::phy::linklayer_format();
    const tdma_round round = fixed_rate_round(frame);
    EXPECT_NEAR(round.query_time_s, 28.0 / 160e3, 1e-12);  // 28-bit query
    EXPECT_NEAR(round.packet_time_s, 13.0 * 1.024e-3, 1e-9);
    EXPECT_NEAR(round.total_time_s, round.query_time_s + round.packet_time_s, 1e-12);
}

TEST(tdma, rate_adapted_round_faster_for_strong_device) {
    const auto frame = ns::phy::linklayer_format();
    const auto strong = rate_adapted_round(frame, -70.0);
    const auto weak = rate_adapted_round(frame, -121.0);
    ASSERT_TRUE(strong.has_value());
    ASSERT_TRUE(weak.has_value());
    EXPECT_LT(strong->packet_time_s, weak->packet_time_s);
}

TEST(tdma, rate_adapted_round_fails_below_sensitivity) {
    EXPECT_FALSE(rate_adapted_round(ns::phy::linklayer_format(), -140.0).has_value());
}

TEST(tdma, fixed_network_latency_scales_linearly) {
    const auto frame = ns::phy::linklayer_format();
    const auto m64 = fixed_rate_network(frame, 64);
    const auto m256 = fixed_rate_network(frame, 256);
    EXPECT_NEAR(m256.latency_s / m64.latency_s, 4.0, 1e-9);
    // Link-layer rate is independent of N for TDMA (pure serialization).
    EXPECT_NEAR(m256.linklayer_rate_bps, m64.linklayer_rate_bps, 1e-6);
}

TEST(tdma, fixed_network_256_latency_ballpark) {
    // ~13.5 ms per device x 256 = ~3.4 s — the order of Fig. 19.
    const auto metrics = fixed_rate_network(ns::phy::linklayer_format(), 256);
    EXPECT_GT(metrics.latency_s, 3.0);
    EXPECT_LT(metrics.latency_s, 4.0);
}

TEST(tdma, rate_adapted_beats_fixed_for_strong_population) {
    const auto frame = ns::phy::linklayer_format();
    const std::vector<double> strong(64, -80.0);
    const auto adapted = rate_adapted_network(frame, strong);
    const auto fixed = fixed_rate_network(frame, 64);
    EXPECT_LT(adapted.latency_s, fixed.latency_s);
    EXPECT_GT(adapted.linklayer_rate_bps, fixed.linklayer_rate_bps);
    EXPECT_EQ(adapted.served, 64u);
}

TEST(tdma, rate_adapted_skips_dead_links) {
    const auto frame = ns::phy::linklayer_format();
    const std::vector<double> rssi = {-80.0, -150.0, -100.0};
    const auto metrics = rate_adapted_network(frame, rssi);
    EXPECT_EQ(metrics.served, 2u);
}

// --------------------------------------------------------------- choir --

TEST(choir, unique_fraction_probability_paper_values) {
    // §2.2: with one-tenth-bin resolution and N = 5, only ~30%.
    EXPECT_NEAR(choir_unique_fraction_probability(5), 0.3024, 1e-4);
    EXPECT_NEAR(choir_unique_fraction_probability(1), 1.0, 1e-12);
    EXPECT_DOUBLE_EQ(choir_unique_fraction_probability(11), 0.0);
}

TEST(choir, unique_fraction_monotone_decreasing) {
    double previous = 1.0;
    for (std::size_t n = 1; n <= 10; ++n) {
        const double p = choir_unique_fraction_probability(n);
        EXPECT_LT(p, previous + 1e-12);
        previous = p;
    }
}

TEST(choir, collision_probability_paper_values) {
    // §2.2: SF 9, N = 10 -> ~9%; N = 20 -> ~32%.
    EXPECT_NEAR(choir_symbol_collision_probability(10, 9), 0.085, 0.01);
    EXPECT_NEAR(choir_symbol_collision_probability(20, 9), 0.31, 0.02);
    EXPECT_DOUBLE_EQ(choir_symbol_collision_probability(1, 9), 0.0);
}

TEST(choir, approximation_close_to_exact_for_small_n) {
    for (std::size_t n : {2u, 5u, 10u}) {
        const double exact = choir_symbol_collision_probability(n, 9);
        const double approx = choir_symbol_collision_approximation(n, 9);
        EXPECT_NEAR(approx / exact, 1.0, 0.1) << n;
    }
}

TEST(choir, decoder_attributes_by_fraction) {
    const auto params = ns::phy::deployed_params();
    choir_decoder decoder(params, 0.1, 16);
    // Two devices with well-separated fractional signatures.
    decoder.set_devices({{.id = 1, .fractional_offset_bins = -0.3, .snr_db = 10.0},
                         {.id = 2, .fractional_offset_bins = 0.3, .snr_db = 10.0}});
    ns::util::rng gen(4);
    choir_round_result result =
        simulate_choir_round(params, decoder.devices(), 50, 1.0, gen);
    EXPECT_EQ(result.transmitted, 100u);
    // Most symbols should decode (collisions are rare at N = 2, SF 9).
    EXPECT_GT(static_cast<double>(result.correct) /
                  static_cast<double>(result.transmitted),
              0.85);
}

TEST(choir, indistinguishable_fractions_fail) {
    // Backscatter-like case: both devices squeezed into the same
    // fractional bucket -> the decoder cannot attribute symbols.
    const auto params = ns::phy::deployed_params();
    ns::util::rng gen(5);
    const std::vector<choir_device> devices = {
        {.id = 1, .fractional_offset_bins = 0.024, .snr_db = 10.0},
        {.id = 2, .fractional_offset_bins = 0.026, .snr_db = 10.0}};
    // Signatures 0.002 bins apart — below the fraction estimator's noise
    // floor, so attribution degenerates to a coin flip. 100 symbols per
    // device keep the rate clearly below the bound for any realization.
    const choir_round_result result = simulate_choir_round(params, devices, 100, 1.0, gen);
    // Attribution is ambiguous: success rate collapses well below the
    // distinct-signature case.
    EXPECT_LT(static_cast<double>(result.correct) /
                  static_cast<double>(result.transmitted),
              0.7);
}

TEST(choir, collision_counter_matches_analytics) {
    const auto params = ns::phy::deployed_params();
    ns::util::rng gen(6);
    std::vector<choir_device> devices;
    for (std::uint32_t d = 0; d < 10; ++d) {
        devices.push_back({.id = d,
                           .fractional_offset_bins = -0.45 + 0.1 * static_cast<double>(d),
                           .snr_db = 10.0});
    }
    const std::size_t symbols = 400;
    const choir_round_result result =
        simulate_choir_round(params, devices, symbols, 1.0, gen);
    // Expected symbols with >= 1 pairwise collision ~ 8.5%.
    const double collision_rate =
        static_cast<double>(result.collided) / static_cast<double>(symbols);
    EXPECT_NEAR(collision_rate, 0.088, 0.035);
}

TEST(choir, resolution_validation) {
    EXPECT_THROW(choir_unique_fraction_probability(5, 0.0), ns::util::invalid_argument);
}

}  // namespace
