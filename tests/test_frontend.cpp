// Tests for the receiver front end (FIR design + decimation, §4.1's
// 4 Msps -> 500 kS/s path) and the receiver's per-device SNR / residual
// tone-offset estimators (§4.2's measurement method).
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <span>

#include "netscatter/channel/superposition.hpp"
#include "netscatter/dsp/fir.hpp"
#include "netscatter/dsp/vector_ops.hpp"
#include "netscatter/phy/chirp.hpp"
#include "netscatter/phy/modulator.hpp"
#include "netscatter/rx/receiver.hpp"
#include "netscatter/util/error.hpp"
#include "netscatter/util/rng.hpp"

namespace {

using ns::dsp::cplx;
using ns::dsp::cvec;

// ------------------------------------------------------------- design --

TEST(fir_design, unit_dc_gain_and_symmetry) {
    const auto taps = ns::dsp::design_lowpass(0.125, 63);
    ASSERT_EQ(taps.size(), 63u);
    double sum = 0.0;
    for (double t : taps) sum += t;
    EXPECT_NEAR(sum, 1.0, 1e-12);
    for (std::size_t i = 0; i < taps.size() / 2; ++i) {
        EXPECT_NEAR(taps[i], taps[taps.size() - 1 - i], 1e-12) << i;
    }
}

TEST(fir_design, passband_flat_stopband_deep) {
    const auto taps = ns::dsp::design_lowpass(0.125, 63);
    // Passband (well inside the cutoff): within ~0.5 dB of unity.
    EXPECT_NEAR(ns::dsp::fir_response_at(taps, 0.0), 1.0, 0.01);
    EXPECT_NEAR(ns::dsp::fir_response_at(taps, 0.06), 1.0, 0.06);
    // Stopband (well past the transition): Hamming gives ~-50 dB.
    EXPECT_LT(ns::dsp::fir_response_at(taps, 0.25), 0.01);
    EXPECT_LT(ns::dsp::fir_response_at(taps, 0.4), 0.01);
}

TEST(fir_design, validates_arguments) {
    EXPECT_THROW(ns::dsp::design_lowpass(0.0, 63), ns::util::invalid_argument);
    EXPECT_THROW(ns::dsp::design_lowpass(0.5, 63), ns::util::invalid_argument);
    EXPECT_THROW(ns::dsp::design_lowpass(0.1, 64), ns::util::invalid_argument);  // even
    EXPECT_THROW(ns::dsp::design_lowpass(0.1, 1), ns::util::invalid_argument);
}

// ---------------------------------------------------------- filtering --

TEST(fir_filter, passes_inband_tone_blocks_outband) {
    const std::size_t n = 4096;
    const auto taps = ns::dsp::design_lowpass(0.125, 63);
    cvec inband(n), outband(n);
    for (std::size_t i = 0; i < n; ++i) {
        inband[i] = std::polar(1.0, 2.0 * std::numbers::pi * 0.05 * static_cast<double>(i));
        outband[i] = std::polar(1.0, 2.0 * std::numbers::pi * 0.3 * static_cast<double>(i));
    }
    const cvec filtered_in = ns::dsp::fir_filter(inband, taps);
    const cvec filtered_out = ns::dsp::fir_filter(outband, taps);
    const double in_power =
        ns::dsp::mean_power(std::span(filtered_in).subspan(200));
    const double out_power =
        ns::dsp::mean_power(std::span(filtered_out).subspan(200));
    EXPECT_NEAR(in_power, 1.0, 0.05);
    EXPECT_LT(out_power, 1e-4);
}

TEST(fir_decimate, length_and_alias_suppression) {
    const std::size_t n = 8192;
    const auto taps = ns::dsp::design_lowpass(0.0625, 63);
    // An out-of-band tone at 0.3 of the input rate would alias to 0.1 of
    // the output rate after decimate-by-8; the filter must remove it.
    cvec tone(n);
    for (std::size_t i = 0; i < n; ++i) {
        tone[i] = std::polar(1.0, 2.0 * std::numbers::pi * 0.3 * static_cast<double>(i));
    }
    const cvec decimated = ns::dsp::fir_decimate(tone, taps, 8);
    EXPECT_EQ(decimated.size(), n / 8);
    EXPECT_LT(ns::dsp::mean_power(std::span(decimated).subspan(32)), 1e-4);
}

TEST(frontend, oversampled_chirp_decodes_after_decimation) {
    // Synthesize the chirp at 8x the chip rate (the USRP-style capture),
    // decimate with the front end, and decode at the critical rate.
    const auto phy = ns::phy::deployed_params();
    const std::size_t oversample = 8;
    const std::size_t n = phy.samples_per_symbol() * oversample;
    const double fs = phy.bandwidth_hz * static_cast<double>(oversample);
    const std::uint32_t shift = 200;

    // Oversampled upchirp: same continuous waveform sampled faster. The
    // sweep spans [-BW/2, BW/2) with f0 offset by the cyclic shift and
    // explicit wrap at +BW/2 (the critical sampling no longer aliases it
    // for us).
    cvec capture(n);
    double phase = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        const double t = static_cast<double>(i) / fs;
        double f = -phy.bandwidth_hz / 2.0 +
                   static_cast<double>(shift) * phy.bin_spacing_hz() +
                   phy.bandwidth_hz * t / phy.symbol_duration_s();
        if (f >= phy.bandwidth_hz / 2.0) f -= phy.bandwidth_hz;  // cyclic wrap
        capture[i] = std::polar(1.0, phase);
        phase += 2.0 * std::numbers::pi * f / fs;
    }

    const cvec baseband = ns::dsp::frontend_decimate(capture, oversample);
    ASSERT_EQ(baseband.size(), phy.samples_per_symbol());
    const ns::phy::demodulator demod(phy, 4);
    const auto power = demod.symbol_power_spectrum(baseband);
    const auto peak = ns::dsp::find_peak(power);
    EXPECT_NEAR(static_cast<double>(peak.bin) / 4.0, static_cast<double>(shift), 1.0);
}

TEST(frontend, oversample_one_is_identity) {
    const cvec signal = {cplx{1, 2}, cplx{3, 4}};
    const cvec out = ns::dsp::frontend_decimate(signal, 1);
    EXPECT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0], signal[0]);
}

// ----------------------------------------------- receiver estimators --

struct estimator_fixture {
    ns::rx::receiver_params rxp;
    estimator_fixture() {
        rxp.phy = ns::phy::deployed_params();
        rxp.frame = ns::phy::linklayer_format();
    }

    ns::rx::decode_result run(double snr_db, double tone_hz, std::uint64_t seed) {
        ns::rx::receiver rx(rxp);
        rx.set_registered_shifts({100});
        ns::util::rng gen(seed);
        const auto bits =
            ns::phy::build_frame_bits(rxp.frame, gen.bits(rxp.frame.payload_bits));
        ns::phy::distributed_modulator mod(rxp.phy, 100);
        ns::channel::tx_contribution tx;
        const ns::dsp::cvec waveform = mod.modulate_packet(bits);
        tx.waveform = std::span<const ns::dsp::cplx>(waveform);
        tx.snr_db = snr_db;
        tx.frequency_offset_hz = tone_hz;
        ns::channel::channel_config config;
        ns::channel::channel_workspace chan_ws;
        const cvec stream = ns::channel::combine(
            std::span<const ns::channel::tx_contribution>(&tx, 1),
            tx.waveform.size(), rxp.phy, config, gen, chan_ws);
        return rx.decode(stream, 0);
    }
};

TEST(estimators, snr_estimate_tracks_injected_snr) {
    estimator_fixture fx;
    for (double snr : {-10.0, -5.0, 0.0, 10.0, 20.0}) {
        const auto result = fx.run(snr, 0.0, 7);
        ASSERT_TRUE(result.reports[0].detected) << snr;
        EXPECT_NEAR(result.reports[0].estimated_snr_db, snr, 1.5) << snr;
    }
}

TEST(estimators, tone_offset_estimate_tracks_injected_cfo) {
    estimator_fixture fx;
    for (double tone : {-300.0, -150.0, -40.0, 0.0, 40.0, 150.0, 300.0}) {
        const auto result = fx.run(10.0, tone, 8);
        ASSERT_TRUE(result.reports[0].detected) << tone;
        EXPECT_NEAR(result.reports[0].estimated_tone_offset_hz, tone, 15.0) << tone;
    }
}

TEST(estimators, estimates_work_concurrently) {
    // Two devices with different SNRs and offsets: each report carries
    // its own estimates.
    ns::rx::receiver_params rxp;
    rxp.phy = ns::phy::deployed_params();
    rxp.frame = ns::phy::linklayer_format();
    ns::rx::receiver rx(rxp);
    rx.set_registered_shifts({100, 300});
    ns::util::rng gen(9);

    std::vector<ns::channel::tx_contribution> txs;
    std::vector<ns::dsp::cvec> waveforms;
    const double snrs[2] = {15.0, -5.0};
    const double tones[2] = {120.0, -200.0};
    for (int d = 0; d < 2; ++d) {
        const auto bits =
            ns::phy::build_frame_bits(rxp.frame, gen.bits(rxp.frame.payload_bits));
        ns::phy::distributed_modulator mod(rxp.phy, d == 0 ? 100 : 300);
        ns::channel::tx_contribution tx;
        waveforms.push_back(mod.modulate_packet(bits));
        tx.waveform = std::span<const ns::dsp::cplx>(waveforms.back());
        tx.snr_db = snrs[d];
        tx.frequency_offset_hz = tones[d];
        txs.push_back(std::move(tx));
    }
    ns::channel::channel_config config;
    ns::channel::channel_workspace chan_ws;
    const cvec stream =
        ns::channel::combine(std::span<const ns::channel::tx_contribution>(txs),
                             txs[0].waveform.size(), rxp.phy, config, gen, chan_ws);
    const auto result = rx.decode(stream, 0);
    ASSERT_TRUE(result.reports[0].detected);
    ASSERT_TRUE(result.reports[1].detected);
    EXPECT_NEAR(result.reports[0].estimated_snr_db, 15.0, 1.5);
    EXPECT_NEAR(result.reports[1].estimated_snr_db, -5.0, 1.5);
    EXPECT_NEAR(result.reports[0].estimated_tone_offset_hz, 120.0, 20.0);
    EXPECT_NEAR(result.reports[1].estimated_tone_offset_hz, -200.0, 20.0);
}

TEST(estimators, timing_jitter_appears_as_tone_offset) {
    // A 1 us timing offset is indistinguishable from a 488 Hz tone after
    // dechirping (ΔFFTbin = Δt*BW): the estimator measures the combined
    // residual, exactly like the paper's §4.2 measurement.
    estimator_fixture fx;
    ns::rx::receiver rx(fx.rxp);
    rx.set_registered_shifts({100});
    ns::util::rng gen(10);
    const auto bits =
        ns::phy::build_frame_bits(fx.rxp.frame, gen.bits(fx.rxp.frame.payload_bits));
    ns::phy::distributed_modulator mod(fx.rxp.phy, 100);
    ns::channel::tx_contribution tx;
    const ns::dsp::cvec waveform = mod.modulate_packet(bits);
    tx.waveform = std::span<const ns::dsp::cplx>(waveform);
    tx.snr_db = 10.0;
    tx.timing_offset_s = 1e-6;  // 0.5 bins == 488.3 Hz equivalent tone
    ns::channel::channel_config config;
    ns::channel::channel_workspace chan_ws;
    const cvec stream = ns::channel::combine(
        std::span<const ns::channel::tx_contribution>(&tx, 1),
        tx.waveform.size(), fx.rxp.phy, config, gen, chan_ws);
    const auto result = rx.decode(stream, 0);
    ASSERT_TRUE(result.reports[0].detected);
    EXPECT_NEAR(std::abs(result.reports[0].estimated_tone_offset_hz), 488.3, 30.0);
}

}  // namespace
