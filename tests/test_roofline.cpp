// Roofline attribution model (src/netscatter/obs/roofline.hpp): the
// analytic bytes/FLOPs model of the Dirichlet-kernel accumulation must
// match hand-computed values, the window-size formula must mirror
// make_dechirped_tone_kernel, the phy.kernel_window_elems counter must
// equal packets x kernels x window for a hand-built population, and the
// model inputs must be bit-identical across thread counts (they are
// deterministic workload facts, not host measurements).
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "netscatter/channel/superposition.hpp"
#include "netscatter/obs/metrics.hpp"
#include "netscatter/obs/roofline.hpp"
#include "netscatter/phy/css_params.hpp"
#include "netscatter/scenario/scenario_registry.hpp"
#include "netscatter/scenario/scenario_runner.hpp"
#include "netscatter/util/rng.hpp"

namespace {

using ns::obs::compiled_in;
using ns::obs::kernel_loop_model;
using ns::obs::kernel_window_size;

// ------------------------------------------------------- model math --

TEST(roofline_model, bytes_flops_and_rates_match_hand_computation) {
    kernel_loop_model model;
    model.window_elems = 1000;
    // 48 B/elem: kernel tap read + accumulator read + accumulator
    // write, all std::complex<double>. 8 flops/elem: complex multiply
    // (6) + complex add (2).
    EXPECT_DOUBLE_EQ(model.bytes(), 48000.0);
    EXPECT_DOUBLE_EQ(model.flops(), 8000.0);
    EXPECT_DOUBLE_EQ(model.arithmetic_intensity(), 8.0 / 48.0);

    // 48 kB in 1 ms = 48 MB/s = 0.048 GB/s; flops scale by 8/48.
    EXPECT_DOUBLE_EQ(model.achieved_gbps(1e-3), 48e-6 / 1e-3);
    EXPECT_DOUBLE_EQ(model.achieved_gflops(1e-3), 8e-6 / 1e-3);
    EXPECT_DOUBLE_EQ(model.fraction_of_peak(1e-3, 4.8), 0.01);

    // Degenerate denominators never divide.
    EXPECT_DOUBLE_EQ(model.achieved_gbps(0.0), 0.0);
    EXPECT_DOUBLE_EQ(model.achieved_gflops(-1.0), 0.0);
    EXPECT_DOUBLE_EQ(model.fraction_of_peak(1e-3, 0.0), 0.0);
}

TEST(roofline_model, window_size_mirrors_kernel_construction) {
    // half = min(radius*padding, bins*padding/2); window = 2*half + 1,
    // clamped to the padded spectrum length.
    EXPECT_EQ(kernel_window_size(512, 8, 16), 257u);  // 2*128 + 1
    EXPECT_EQ(kernel_window_size(512, 2, 4), 17u);    // 2*8 + 1
    EXPECT_EQ(kernel_window_size(8, 2, 1), 5u);       // 2*2 + 1
    // Oversized radius clamps to the padded length, not beyond.
    EXPECT_EQ(kernel_window_size(512, 1, 400), 512u);
    EXPECT_EQ(kernel_window_size(4, 1, 100), 4u);
}

TEST(roofline_model, from_snapshot_reads_the_counter_or_zero) {
    ns::obs::metrics_registry reg;
    reg.get_counter("phy.kernel_window_elems")->add(12345);
    const kernel_loop_model model =
        ns::obs::kernel_loop_model_from(reg.snapshot());
    if (compiled_in()) {
        EXPECT_EQ(model.window_elems, 12345u);
    } else {
        EXPECT_EQ(model.window_elems, 0u);  // counter compiled out
    }
    // Absent counter (e.g. a sample-fidelity run): zero, not a throw.
    ns::obs::metrics_registry empty;
    EXPECT_EQ(ns::obs::kernel_loop_model_from(empty.snapshot()).window_elems,
              0u);
}

// --------------------------------------- counter vs hand-built combine --

TEST(roofline_model, kernel_window_elems_counts_packets_kernels_window) {
    if (!compiled_in()) GTEST_SKIP() << "built with NS_OBS=OFF";
    // 3 packets, 8 payload symbols of which 5 are ON, 6 preamble
    // upchirps: 3 * (6 + 5) = 33 kernels. Radius 4 at padding 2 over
    // SF9's 512 bins: window = 2*4*2 + 1 = 17 elements per kernel.
    const auto phy = ns::phy::deployed_params();
    ns::channel::channel_config chan;
    chan.noise_power = 1.0;
    ns::channel::symbol_domain_params sd;
    sd.zero_padding = 2;
    sd.kernel_radius_bins = 4;
    sd.payload_symbols = 8;

    const std::vector<std::uint8_t> bits = {1, 0, 1, 1, 0, 0, 1, 1};
    std::vector<ns::channel::packet_contribution> packets(3);
    for (std::size_t d = 0; d < packets.size(); ++d) {
        packets[d].cyclic_shift = static_cast<std::uint32_t>(37 * (d + 1));
        packets[d].frame_bits = bits;
        packets[d].snr_db = 12.0;
        packets[d].frequency_offset_hz = 0.0;
    }

    ns::obs::metrics_registry registry;
    ns::channel::channel_workspace workspace;
    workspace.obs.metrics = &registry;
    ns::util::rng gen(7);
    ns::channel::combine_symbol_domain(packets, phy, chan, sd, gen, workspace);

    const std::uint64_t window =
        kernel_window_size(phy.num_bins(), sd.zero_padding,
                           sd.kernel_radius_bins);
    EXPECT_EQ(window, 17u);
    const std::uint64_t kernels = 3 * (sd.preamble_upchirps + 5);
    const ns::obs::metrics_snapshot snap = registry.snapshot();
    EXPECT_EQ(snap.counter_value("phy.kernels_summed"), kernels);
    EXPECT_EQ(snap.counter_value("phy.kernel_window_elems"),
              kernels * window);

    const kernel_loop_model model = ns::obs::kernel_loop_model_from(snap);
    EXPECT_DOUBLE_EQ(model.bytes(),
                     static_cast<double>(kernels * window) * 48.0);
    EXPECT_DOUBLE_EQ(model.flops(),
                     static_cast<double>(kernels * window) * 8.0);
}

// -------------------------------------------- thread-count invariance --

TEST(roofline_model, model_inputs_are_identical_across_thread_counts) {
    if (!compiled_in()) GTEST_SKIP() << "built with NS_OBS=OFF";
    // The roofline numerators (elems, bytes, flops, intensity) are
    // deterministic workload facts and must not depend on the thread
    // count; only the measured denominator (seconds) is a host fact.
    auto spec = *ns::scenario::find_scenario("office-256");
    spec.sim.rounds = 2;
    spec.replicas = 2;
    spec.sim.obs.metrics = true;

    const auto serial = ns::scenario::run_scenario(
        spec, {.num_threads = 1, .parallel = false});
    const auto threaded = ns::scenario::run_scenario(
        spec, {.num_threads = 4, .parallel = true});

    const kernel_loop_model a =
        ns::obs::kernel_loop_model_from(serial.sim.metrics);
    const kernel_loop_model b =
        ns::obs::kernel_loop_model_from(threaded.sim.metrics);
    EXPECT_GT(a.window_elems, 0u);  // the fast path actually ran
    EXPECT_EQ(a.window_elems, b.window_elems);
    EXPECT_DOUBLE_EQ(a.bytes(), b.bytes());
    EXPECT_DOUBLE_EQ(a.flops(), b.flops());
    EXPECT_DOUBLE_EQ(a.arithmetic_intensity(), b.arithmetic_intensity());
}

}  // namespace
