// Property-based tests (parameterized gtest sweeps) on the library's
// core invariants: chirp orthogonality across configurations, decoding
// under randomized impairments, CRC error detection, allocator safety,
// BER monotonicity, FFT correctness across sizes.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <span>
#include <tuple>

#include "netscatter/channel/awgn.hpp"
#include "netscatter/channel/superposition.hpp"
#include "netscatter/dsp/fft.hpp"
#include "netscatter/dsp/vector_ops.hpp"
#include "netscatter/mac/allocator.hpp"
#include "netscatter/phy/chirp.hpp"
#include "netscatter/phy/demodulator.hpp"
#include "netscatter/phy/modulator.hpp"
#include "netscatter/rx/receiver.hpp"
#include "netscatter/util/crc.hpp"
#include "netscatter/util/rng.hpp"

namespace {

using ns::dsp::cplx;
using ns::dsp::cvec;

// ----------------------------------------- FFT across transform sizes --

class fft_sizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(fft_sizes, roundtrip_and_parseval) {
    const std::size_t n = GetParam();
    ns::util::rng gen(n);
    cvec signal(n);
    for (auto& x : signal) x = cplx{gen.gaussian(), gen.gaussian()};
    const cvec spectrum = ns::dsp::fft(signal);
    EXPECT_NEAR(ns::dsp::energy(spectrum) / static_cast<double>(n),
                ns::dsp::energy(signal), 1e-6 * ns::dsp::energy(signal));
    const cvec back = ns::dsp::ifft(spectrum);
    double max_err = 0.0;
    for (std::size_t i = 0; i < n; ++i) max_err = std::max(max_err, std::abs(back[i] - signal[i]));
    EXPECT_LT(max_err, 1e-8);
}

INSTANTIATE_TEST_SUITE_P(sizes, fft_sizes,
                         ::testing::Values(2, 8, 64, 128, 512, 2048, 8192));

// ------------------------------- chirp orthogonality per configuration --

class chirp_configs
    : public ::testing::TestWithParam<std::tuple<double, int>> {};

TEST_P(chirp_configs, distinct_shifts_stay_orthogonal) {
    const auto [bw, sf] = GetParam();
    const ns::phy::css_params p{.bandwidth_hz = bw, .spreading_factor = sf};
    const ns::phy::demodulator demod(p, 1);
    ns::util::rng gen(static_cast<std::uint64_t>(sf));
    // Sample random shift pairs; energy of shift a must not leak into b.
    for (int trial = 0; trial < 20; ++trial) {
        const auto a = static_cast<std::uint32_t>(
            gen.uniform_int(0, static_cast<std::int64_t>(p.num_bins()) - 1));
        auto b = static_cast<std::uint32_t>(
            gen.uniform_int(0, static_cast<std::int64_t>(p.num_bins()) - 1));
        if (a == b) b = (b + 1) % p.num_bins();
        const auto power = demod.symbol_power_spectrum(
            ns::phy::make_upchirp(p, static_cast<double>(a)));
        EXPECT_GT(power[a], 1e6 * power[b])
            << "bw " << bw << " sf " << sf << " shifts " << a << "," << b;
    }
}

INSTANTIATE_TEST_SUITE_P(
    configs, chirp_configs,
    ::testing::Values(std::make_tuple(500e3, 9), std::make_tuple(500e3, 8),
                      std::make_tuple(250e3, 8), std::make_tuple(250e3, 7),
                      std::make_tuple(125e3, 7), std::make_tuple(125e3, 6)));

// ----------------------- decoding under randomized residual impairments --

class impaired_decoding : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(impaired_decoding, skip2_tolerates_sub_bin_residuals) {
    // Property: with SKIP = 2 and residual (timing + CFO) displacement
    // under half a bin, every device decodes regardless of the random
    // draw. This is the §3.2.1 design invariant.
    const std::uint64_t seed = GetParam();
    ns::util::rng gen(seed);
    ns::rx::receiver_params rxp;
    rxp.phy = ns::phy::deployed_params();
    rxp.frame = ns::phy::linklayer_format();
    ns::rx::receiver rx(rxp);

    std::vector<std::uint32_t> shifts;
    for (std::uint32_t s = 0; s < 16; ++s) shifts.push_back(s * 32);
    rx.set_registered_shifts(shifts);

    std::vector<ns::channel::tx_contribution> contributions;
    std::vector<cvec> waveforms;
    std::vector<std::vector<bool>> sent;
    for (std::uint32_t shift : shifts) {
        const std::vector<bool> bits =
            ns::phy::build_frame_bits(rxp.frame, gen.bits(rxp.frame.payload_bits));
        sent.push_back(bits);
        ns::phy::distributed_modulator mod(rxp.phy, shift);
        ns::channel::tx_contribution tx;
        waveforms.push_back(mod.modulate_packet(bits));
        tx.waveform = std::span<const ns::dsp::cplx>(waveforms.back());
        tx.snr_db = 5.0;
        tx.timing_offset_s = gen.uniform(-0.8e-6, 0.8e-6);   // < 0.4 bin
        tx.frequency_offset_hz = gen.uniform(-90.0, 90.0);   // < 0.1 bin
        contributions.push_back(std::move(tx));
    }
    ns::channel::channel_config config;
    const std::size_t samples =
        (rxp.frame.preamble_symbols + rxp.frame.payload_plus_crc_bits()) *
        rxp.phy.samples_per_symbol();
    ns::channel::channel_workspace chan_ws;
    const cvec stream = ns::channel::combine(
        std::span<const ns::channel::tx_contribution>(contributions), samples,
        rxp.phy, config, gen, chan_ws);
    const auto result = rx.decode(stream, 0);
    for (std::size_t d = 0; d < shifts.size(); ++d) {
        EXPECT_TRUE(result.reports[d].crc_ok) << "seed " << seed << " device " << d;
        EXPECT_EQ(result.reports[d].bits, sent[d]) << "seed " << seed;
    }
}

INSTANTIATE_TEST_SUITE_P(seeds, impaired_decoding,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// ------------------------------------------------- CRC error detection --

class crc_burst_errors : public ::testing::TestWithParam<std::size_t> {};

TEST_P(crc_burst_errors, detects_all_bursts_up_to_8_bits) {
    // CRC-8 detects every burst error of length <= 8 — the classic
    // guarantee; sweep burst start positions.
    const std::size_t burst_len = GetParam();
    ns::util::rng gen(burst_len);
    const std::vector<bool> payload = gen.bits(32);
    const std::vector<bool> protected_bits = ns::util::append_crc8(payload);
    for (std::size_t start = 0; start + burst_len <= protected_bits.size(); ++start) {
        std::vector<bool> corrupted = protected_bits;
        // Invert the burst ends and randomize the middle (non-zero burst).
        corrupted[start] = !corrupted[start];
        if (burst_len > 1) {
            corrupted[start + burst_len - 1] = !corrupted[start + burst_len - 1];
        }
        for (std::size_t i = 1; i + 1 < burst_len; ++i) {
            if (gen.bernoulli(0.5)) {
                corrupted[start + i] = !corrupted[start + i];
            }
        }
        EXPECT_FALSE(ns::util::check_crc8(corrupted))
            << "burst " << burst_len << " at " << start;
    }
}

INSTANTIATE_TEST_SUITE_P(burst_lengths, crc_burst_errors,
                         ::testing::Values(1, 2, 3, 5, 8));

// ------------------------------------------------- allocator invariants --

class allocator_random_powers : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(allocator_random_powers, neighbours_within_tolerable_difference) {
    // Property: after power-aware allocation of a <=35 dB-spread
    // population, every adjacent pair's power difference stays within the
    // side-lobe tolerance of its separation.
    ns::util::rng gen(GetParam());
    ns::mac::allocation_params ap{.phy = ns::phy::deployed_params(),
                                  .skip = 2,
                                  .num_association_slots = 0};
    const ns::mac::shift_allocator alloc(ap);

    const std::size_t n = 128;
    std::vector<ns::mac::device_power> devices;
    for (std::uint32_t i = 0; i < n; ++i) {
        devices.push_back({i, gen.uniform(-115.0, -80.0)});  // 35 dB spread
    }
    const auto result = alloc.allocate(devices);

    // Order assigned shifts and check adjacent (circular) pairs.
    std::vector<std::pair<std::uint32_t, double>> placed;
    for (const auto& d : devices) placed.emplace_back(result.shifts.at(d.device_id), d.rx_power_dbm);
    std::sort(placed.begin(), placed.end());
    for (std::size_t i = 0; i < placed.size(); ++i) {
        const auto& [shift_a, power_a] = placed[i];
        const auto& [shift_b, power_b] = placed[(i + 1) % placed.size()];
        const std::uint32_t separation = alloc.circular_distance(shift_a, shift_b);
        const double difference = std::abs(power_a - power_b);
        EXPECT_LE(difference,
                  ns::mac::tolerable_power_difference_db(ap.phy, separation) + 1e-9)
            << "pair at shifts " << shift_a << "," << shift_b;
    }
}

INSTANTIATE_TEST_SUITE_P(seeds, allocator_random_powers,
                         ::testing::Values(11, 22, 33, 44, 55));

// ----------------------------------------------- BER monotone in SNR --

TEST(properties, single_device_ber_monotone_in_snr) {
    // Higher SNR must never yield (significantly) more bit errors.
    ns::rx::receiver_params rxp;
    rxp.phy = ns::phy::deployed_params();
    rxp.frame = ns::phy::linklayer_format();
    ns::rx::receiver rx(rxp);
    rx.set_registered_shifts({100});
    ns::util::rng gen(17);

    std::vector<double> bers;
    for (double snr : {-22.0, -18.0, -14.0, -10.0}) {
        std::size_t errors = 0, bits = 0;
        for (int trial = 0; trial < 6; ++trial) {
            const std::vector<bool> frame_bits =
                ns::phy::build_frame_bits(rxp.frame, gen.bits(rxp.frame.payload_bits));
            ns::phy::distributed_modulator mod(rxp.phy, 100);
            ns::channel::tx_contribution tx;
            const cvec waveform = mod.modulate_packet(frame_bits);
            tx.waveform = std::span<const ns::dsp::cplx>(waveform);
            tx.snr_db = snr;
            ns::channel::channel_config config;
            const std::size_t samples = tx.waveform.size();
            ns::channel::channel_workspace chan_ws;
            const cvec stream = ns::channel::combine(
                std::span<const ns::channel::tx_contribution>(&tx, 1), samples,
                rxp.phy, config, gen, chan_ws);
            const auto result = rx.decode(stream, 0);
            bits += frame_bits.size();
            if (result.reports[0].detected) {
                for (std::size_t i = 0; i < frame_bits.size(); ++i) {
                    if (result.reports[0].bits[i] != frame_bits[i]) ++errors;
                }
            } else {
                for (bool b : frame_bits) errors += b ? 1 : 0;
            }
        }
        bers.push_back(static_cast<double>(errors) / static_cast<double>(bits));
    }
    for (std::size_t i = 1; i < bers.size(); ++i) {
        EXPECT_LE(bers[i], bers[i - 1] + 0.02) << "step " << i;
    }
    EXPECT_LT(bers.back(), 0.01);  // -10 dB is comfortably decodable
}

// -------------------------------- processing gain matches 2^SF theory --

class processing_gain : public ::testing::TestWithParam<int> {};

TEST_P(processing_gain, peak_to_noise_scales_with_sf) {
    // After dechirp+FFT the peak-power-to-mean-noise-bin ratio is
    // N * snr_linear; verify within statistical tolerance.
    const int sf = GetParam();
    const ns::phy::css_params p{.bandwidth_hz = 500e3, .spreading_factor = sf};
    const ns::phy::demodulator demod(p, 1);
    ns::util::rng gen(static_cast<std::uint64_t>(100 + sf));
    const double snr_db = -5.0;
    const double expected_ratio =
        static_cast<double>(p.num_bins()) * std::pow(10.0, snr_db / 10.0);

    double ratio_sum = 0.0;
    const int trials = 30;
    for (int t = 0; t < trials; ++t) {
        cvec symbol = ns::phy::make_upchirp(p, 50.0);
        ns::channel::add_noise_for_unit_signal_snr(symbol, snr_db, gen);
        const auto power = demod.symbol_power_spectrum(symbol);
        double noise_sum = 0.0;
        std::size_t noise_bins = 0;
        for (std::size_t b = 0; b < power.size(); ++b) {
            if (b != 50) {
                noise_sum += power[b];
                ++noise_bins;
            }
        }
        ratio_sum += power[50] / (noise_sum / static_cast<double>(noise_bins));
    }
    const double measured = ratio_sum / trials;
    EXPECT_NEAR(measured / expected_ratio, 1.0, 0.45) << "sf " << sf;
}

INSTANTIATE_TEST_SUITE_P(sfs, processing_gain, ::testing::Values(7, 8, 9, 10));

// --------------------------------------- padded demod degrades nothing --

class padded_lora_demod : public ::testing::TestWithParam<std::size_t> {};

TEST_P(padded_lora_demod, all_padding_factors_decode_cleanly) {
    const std::size_t padding = GetParam();
    const ns::phy::css_params p{.bandwidth_hz = 250e3, .spreading_factor = 7};
    const ns::phy::lora_modulator mod(p);
    const ns::phy::demodulator demod(p, padding);
    ns::util::rng gen(padding);
    for (int t = 0; t < 32; ++t) {
        const auto value = static_cast<std::uint32_t>(gen.uniform_int(0, 127));
        EXPECT_EQ(demod.demodulate_lora_symbol(mod.modulate_symbol(value)), value);
    }
}

INSTANTIATE_TEST_SUITE_P(paddings, padded_lora_demod, ::testing::Values(1, 2, 4, 8, 16));

}  // namespace
