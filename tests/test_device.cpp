// Unit tests for ns::device — impedance network, envelope detector,
// backscatter device state machine.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "netscatter/device/backscatter_device.hpp"
#include "netscatter/device/envelope_detector.hpp"
#include "netscatter/device/impedance.hpp"
#include "netscatter/util/error.hpp"

namespace {

using namespace ns::device;
constexpr double inf = std::numeric_limits<double>::infinity();

// ---------------------------------------------------------- impedance --

TEST(impedance, reflection_coefficient_reference_points) {
    EXPECT_DOUBLE_EQ(reflection_coefficient(0.0), -1.0);   // short
    EXPECT_DOUBLE_EQ(reflection_coefficient(inf), 1.0);    // open
    EXPECT_DOUBLE_EQ(reflection_coefficient(50.0), 0.0);   // matched
    EXPECT_NEAR(reflection_coefficient(100.0), 1.0 / 3.0, 1e-12);
}

TEST(impedance, reflection_rejects_negative) {
    EXPECT_THROW(reflection_coefficient(-1.0), ns::util::invalid_argument);
}

TEST(impedance, short_to_open_is_zero_db) {
    // §3.2.3: switching 0 <-> inf maximizes |Γ0 - Γ1|^2/4 = 1 (0 dB).
    EXPECT_NEAR(backscatter_power_gain(0.0, inf), 1.0, 1e-12);
    EXPECT_NEAR(backscatter_power_gain_db(0.0, inf), 0.0, 1e-9);
}

TEST(impedance, matched_to_open_is_minus_six_db) {
    // Γ0 = 0, Γ1 = 1 -> gain = 1/4 = -6.02 dB.
    EXPECT_NEAR(backscatter_power_gain_db(50.0, inf), -6.0206, 1e-3);
}

TEST(impedance, gain_decreases_with_z0) {
    // The Fig. 7a curve: monotonically decreasing gain as Z0 grows.
    double previous = backscatter_power_gain_db(0.0, inf);
    for (double z0 = 50.0; z0 <= 1000.0; z0 += 50.0) {
        const double gain = backscatter_power_gain_db(z0, inf);
        EXPECT_LT(gain, previous) << "z0 " << z0;
        previous = gain;
    }
    // At 1000 ohm the gain is down tens of dB (Fig. 7a shows about -26).
    EXPECT_NEAR(backscatter_power_gain_db(1000.0, inf), -26.4, 1.0);
}

TEST(impedance, z0_for_gain_inverts_gain) {
    for (double target : {0.0, -4.0, -10.0, -20.0}) {
        const double z0 = z0_for_gain_db(target);
        EXPECT_NEAR(backscatter_power_gain_db(z0, inf), target, 1e-9) << target;
    }
    // 0 dB requires a short; positive targets are invalid.
    EXPECT_NEAR(z0_for_gain_db(0.0), 0.0, 1e-9);
    EXPECT_THROW(z0_for_gain_db(1.0), ns::util::invalid_argument);
}

TEST(impedance, hardware_levels_are_paper_values) {
    const auto& levels = hardware_gain_levels_db();
    ASSERT_EQ(levels.size(), 3u);
    EXPECT_DOUBLE_EQ(levels[0], 0.0);
    EXPECT_DOUBLE_EQ(levels[1], -4.0);
    EXPECT_DOUBLE_EQ(levels[2], -10.0);
}

TEST(switch_network, levels_sorted_strongest_first) {
    const switch_network network({-10.0, 0.0, -4.0});
    EXPECT_DOUBLE_EQ(network.gain_db(0), 0.0);
    EXPECT_DOUBLE_EQ(network.gain_db(1), -4.0);
    EXPECT_DOUBLE_EQ(network.gain_db(2), -10.0);
    EXPECT_EQ(network.max_level(), 0u);
    EXPECT_EQ(network.middle_level(), 1u);
}

TEST(switch_network, impedances_realize_gains) {
    const switch_network network;
    for (std::size_t level = 0; level < network.num_levels(); ++level) {
        EXPECT_NEAR(backscatter_power_gain_db(network.z0_ohm(level), inf),
                    network.gain_db(level), 1e-9);
    }
}

TEST(switch_network, nearest_level) {
    const switch_network network;  // {0, -4, -10}
    EXPECT_EQ(network.nearest_level(0.5), 0u);
    EXPECT_EQ(network.nearest_level(-3.0), 1u);
    EXPECT_EQ(network.nearest_level(-8.0), 2u);
    EXPECT_EQ(network.nearest_level(-40.0), 2u);
}

TEST(switch_network, rejects_empty) {
    EXPECT_THROW(switch_network(std::vector<double>{}), ns::util::invalid_argument);
}

// --------------------------------------------------- envelope detector --

TEST(envelope_detector, sensitivity_threshold) {
    envelope_detector detector({.sensitivity_dbm = -49.0}, ns::util::rng(1));
    EXPECT_TRUE(detector.can_decode(-48.0));
    EXPECT_TRUE(detector.can_decode(-49.0));
    EXPECT_FALSE(detector.can_decode(-50.0));
}

TEST(envelope_detector, rssi_quantized) {
    envelope_detector detector(
        {.sensitivity_dbm = -49.0, .rssi_noise_sigma_db = 0.0, .rssi_step_db = 2.0},
        ns::util::rng(2));
    const double rssi = detector.measure_rssi_dbm(-33.3);
    EXPECT_DOUBLE_EQ(std::fmod(rssi, 2.0), 0.0);
    EXPECT_NEAR(rssi, -33.3, 1.0);
}

TEST(envelope_detector, rssi_noise_spread) {
    envelope_detector detector(
        {.sensitivity_dbm = -49.0, .rssi_noise_sigma_db = 1.0, .rssi_step_db = 0.0},
        ns::util::rng(3));
    double min = 0.0, max = -100.0;
    for (int i = 0; i < 1000; ++i) {
        const double r = detector.measure_rssi_dbm(-30.0);
        min = std::min(min, r);
        max = std::max(max, r);
    }
    EXPECT_LT(min, -30.5);
    EXPECT_GT(max, -29.5);
}

// --------------------------------------------------- backscatter device --

device_params quiet_params() {
    device_params params;
    params.detector.rssi_noise_sigma_db = 0.0;
    params.detector.rssi_step_db = 0.0;
    params.crystal.tolerance_ppm = 0.0;
    params.crystal.drift_sigma_hz = 0.0;
    return params;
}

TEST(backscatter_device, silent_below_detector_sensitivity) {
    backscatter_device device(1, quiet_params(), 1);
    const auto intent = device.handle_query(-60.0, std::nullopt);
    EXPECT_EQ(intent.action, device_action::none);
    EXPECT_EQ(device.state(), device_state::unassociated);
}

TEST(backscatter_device, association_request_strong_query_middle_gain) {
    backscatter_device device(1, quiet_params(), 2);
    const auto intent = device.handle_query(-25.0, std::nullopt);
    EXPECT_EQ(intent.action, device_action::association_request);
    EXPECT_EQ(intent.association_region, snr_region::high);
    EXPECT_DOUBLE_EQ(intent.gain_db, -4.0);  // middle level, §3.2.3
    EXPECT_EQ(device.state(), device_state::awaiting_ack);
}

TEST(backscatter_device, association_request_weak_query_max_gain) {
    backscatter_device device(1, quiet_params(), 3);
    const auto intent = device.handle_query(-45.0, std::nullopt);
    EXPECT_EQ(intent.action, device_action::association_request);
    EXPECT_EQ(intent.association_region, snr_region::low);
    EXPECT_DOUBLE_EQ(intent.gain_db, 0.0);  // maximum level
}

TEST(backscatter_device, ack_follows_assignment) {
    backscatter_device device(1, quiet_params(), 4);
    device.handle_query(-30.0, std::nullopt);
    // No assignment yet: the device waits.
    auto intent = device.handle_query(-30.0, std::nullopt);
    EXPECT_EQ(intent.action, device_action::skip);
    // Assignment arrives: the device ACKs on the assigned shift.
    intent = device.handle_query(-30.0, shift_assignment{.network_id = 7, .cyclic_shift = 84});
    EXPECT_EQ(intent.action, device_action::association_ack);
    EXPECT_EQ(intent.cyclic_shift, 84u);
    EXPECT_EQ(device.state(), device_state::associated);
    EXPECT_EQ(device.cyclic_shift(), 84u);
}

TEST(backscatter_device, transmits_data_when_associated) {
    backscatter_device device(1, quiet_params(), 5);
    device.force_associate(100, -30.0, 1);  // middle gain baseline
    const auto intent = device.handle_query(-30.0, std::nullopt);
    EXPECT_EQ(intent.action, device_action::transmit_data);
    EXPECT_EQ(intent.cyclic_shift, 100u);
    EXPECT_DOUBLE_EQ(intent.gain_db, -4.0);
}

TEST(backscatter_device, stronger_query_lowers_gain) {
    // Downlink up 3 dB => uplink up ~6 dB => desired gain -4-6 = -10 dB.
    backscatter_device device(1, quiet_params(), 6);
    device.force_associate(100, -30.0, 1);
    const auto intent = device.handle_query(-27.0, std::nullopt);
    EXPECT_EQ(intent.action, device_action::transmit_data);
    EXPECT_DOUBLE_EQ(intent.gain_db, -10.0);
}

TEST(backscatter_device, weaker_query_raises_gain) {
    backscatter_device device(1, quiet_params(), 7);
    device.force_associate(100, -30.0, 1);
    const auto intent = device.handle_query(-32.0, std::nullopt);  // down 2 dB
    EXPECT_EQ(intent.action, device_action::transmit_data);
    EXPECT_DOUBLE_EQ(intent.gain_db, 0.0);  // -4 + 4 = 0
}

TEST(backscatter_device, out_of_tolerance_skips_then_reassociates) {
    // Downlink up 10 dB => uplink up 20 dB; even the -10 dB floor leaves
    // +14 dB of residual — the device must skip, and after max_skips
    // consecutive skips re-initiate association (§3.2.3).
    backscatter_device device(1, quiet_params(), 8);
    device.force_associate(100, -30.0, 1);
    auto intent = device.handle_query(-20.0, std::nullopt);
    EXPECT_EQ(intent.action, device_action::skip);
    intent = device.handle_query(-20.0, std::nullopt);
    EXPECT_EQ(intent.action, device_action::association_request);
    EXPECT_EQ(device.state(), device_state::awaiting_ack);
}

TEST(backscatter_device, recovers_after_single_skip) {
    backscatter_device device(1, quiet_params(), 9);
    device.force_associate(100, -30.0, 1);
    auto intent = device.handle_query(-20.0, std::nullopt);  // skip 1
    EXPECT_EQ(intent.action, device_action::skip);
    intent = device.handle_query(-30.0, std::nullopt);  // back to baseline
    EXPECT_EQ(intent.action, device_action::transmit_data);
    EXPECT_EQ(device.state(), device_state::associated);
}

TEST(backscatter_device, per_packet_impairments_sampled) {
    device_params params = quiet_params();
    params.crystal.tolerance_ppm = 50.0;
    params.crystal.operating_frequency_hz = 3e6;
    params.crystal.drift_sigma_hz = 10.0;
    backscatter_device device(1, params, 10);
    device.force_associate(10, -30.0, 1);
    const auto a = device.handle_query(-30.0, std::nullopt);
    const auto b = device.handle_query(-30.0, std::nullopt);
    // Hardware delay and CFO drift differ packet to packet.
    EXPECT_NE(a.hardware_delay_s, b.hardware_delay_s);
    EXPECT_NE(a.frequency_offset_hz, b.frequency_offset_hz);
    // Static CFO bounded by the crystal tolerance (150 Hz at 3 MHz/50 ppm).
    EXPECT_LE(std::abs(device.static_frequency_offset_hz()), 150.0);
}

TEST(backscatter_device, force_associate_validates) {
    backscatter_device device(1, quiet_params(), 11);
    EXPECT_THROW(device.force_associate(512, -30.0, 0), ns::util::invalid_argument);
    EXPECT_THROW(device.force_associate(10, -30.0, 9), ns::util::invalid_argument);
}

}  // namespace
