// Fig. 8 — normalized power spectrum of an upchirp multiplied by the
// baseline downchirp, zero-padded (sinc side lobes). The paper marks the
// side-lobe level a neighbour at SKIP bins must survive: ~-13 dB at
// SKIP=2 (the §3.2.3 text quantifies 13.5 dB) and ~-21 dB at SKIP=3.
//
// We print the measured spectrum envelope near the peak and the derived
// tolerable power-difference model the allocator uses.
#include <algorithm>
#include <cmath>
#include <iostream>

#include "netscatter/dsp/fft.hpp"
#include "netscatter/dsp/vector_ops.hpp"
#include "netscatter/mac/allocator.hpp"
#include "netscatter/phy/chirp.hpp"
#include "netscatter/util/table.hpp"

int main() {
    const ns::phy::css_params phy = ns::phy::deployed_params();
    const std::size_t padding = 16;

    // Worst case for a neighbour: the interferer sits half a bin off its
    // nominal location (residual jitter), so its side lobes peak at the
    // neighbour's bin. Use shift = 0.5 to render that case.
    const ns::dsp::cvec chirp = ns::phy::make_upchirp(phy, 0.5);
    const ns::dsp::cvec dechirped =
        ns::dsp::multiply(chirp, ns::phy::dechirp_reference(phy));
    const auto power = ns::dsp::power_spectrum(
        ns::dsp::fft_zero_padded(dechirped, phy.num_bins() * padding));
    const double peak = *std::max_element(power.begin(), power.end());

    ns::util::text_table spectrum(
        "Fig 8: normalized power at +Delta bins from a (half-bin offset) peak",
        {"offset [bins]", "measured [dB]", "allocator envelope [dB]"});
    for (double offset : {1.0, 1.5, 2.0, 2.5, 3.0, 4.0, 6.0, 8.0, 16.0, 64.0, 256.0}) {
        // Max power within +-0.25 bins of the offset (envelope sampling).
        const auto centre = static_cast<std::ptrdiff_t>(
            std::llround((0.5 + offset) * static_cast<double>(padding)));
        double level = 0.0;
        for (std::ptrdiff_t k = centre - 4; k <= centre + 4; ++k) {
            const auto idx = static_cast<std::size_t>(
                (k + static_cast<std::ptrdiff_t>(power.size())) %
                static_cast<std::ptrdiff_t>(power.size()));
            level = std::max(level, power[idx]);
        }
        const auto separation = static_cast<std::uint32_t>(std::ceil(offset));
        spectrum.add_row(
            {ns::util::format_double(offset, 1),
             ns::util::format_double(10.0 * std::log10(level / peak), 1),
             ns::util::format_double(
                 -ns::mac::tolerable_power_difference_db(phy, separation, 100.0), 1)});
    }
    spectrum.print(std::cout);
    std::cout << "\npaper marks: (SKIP=2, -13 dB) and (SKIP=3, -21 dB); SS3.2.3 "
                 "text: a SKIP=2 neighbour is drowned below 13.5 dB.\n"
                 "the allocator envelope (Dirichlet-kernel worst case) matches the "
                 "measured first side lobe at -13.5 dB.\n";
    return 0;
}
