// Fig. 14 — residual frequency and timing offsets of the backscatter
// fleet.
//
// (a) CDF of per-device frequency offsets: crystal tolerance at a <=3 MHz
//     baseband keeps every device within ~150 Hz (0.15 bin at 500k/SF9).
// (b) 1-CDF of the residual ΔFFTbin (hardware timing jitter + CFO) for
//     the three Table-1 configurations with ~1 kbps bitrate; this is the
//     measurement that justifies SKIP = 2.
#include <cmath>
#include <iostream>
#include <span>
#include <vector>

#include "netscatter/channel/impairments.hpp"
#include "netscatter/channel/superposition.hpp"
#include "netscatter/phy/css_params.hpp"
#include "netscatter/phy/modulator.hpp"
#include "netscatter/rx/receiver.hpp"
#include "netscatter/util/rng.hpp"
#include "netscatter/util/stats.hpp"
#include "netscatter/util/table.hpp"

int main() {
    ns::util::rng rng(14);

    // --- (a) frequency offsets, measured THROUGH the receiver ------------
    // The paper measures offsets "using the method described in §3.3.3":
    // decode packets and read the residual from the preamble phase
    // progression. We transmit concurrent rounds from 64 devices with
    // crystal offsets and collect the receiver's per-device estimates.
    const ns::channel::crystal_model crystal{.tolerance_ppm = 50.0,
                                             .operating_frequency_hz = 3e6,
                                             .drift_sigma_hz = 10.0};
    const ns::phy::css_params phy_a = ns::phy::deployed_params();
    ns::rx::receiver_params rxp;
    rxp.phy = phy_a;
    rxp.frame = ns::phy::linklayer_format();
    rxp.zero_padding_factor = 4;
    ns::rx::receiver receiver(rxp);

    const int devices_a = 64;
    std::vector<std::uint32_t> shifts;
    std::vector<double> true_offsets;
    for (int d = 0; d < devices_a; ++d) {
        shifts.push_back(static_cast<std::uint32_t>(d * 8));
        true_offsets.push_back(crystal.sample_static_offset_hz(rng));
    }
    receiver.set_registered_shifts(shifts);

    std::vector<double> offsets;  // receiver-estimated, Hz
    const int rounds = 16;
    for (int round = 0; round < rounds; ++round) {
        std::vector<ns::channel::tx_contribution> txs;
        std::vector<ns::dsp::cvec> waveforms;
        for (int d = 0; d < devices_a; ++d) {
            ns::phy::distributed_modulator mod(phy_a, shifts[static_cast<std::size_t>(d)]);
            ns::channel::tx_contribution tx;
            waveforms.push_back(mod.modulate_packet(ns::phy::build_frame_bits(
                rxp.frame, rng.bits(rxp.frame.payload_bits))));
            tx.waveform = std::span<const ns::dsp::cplx>(waveforms.back());
            tx.snr_db = 5.0;
            tx.frequency_offset_hz = true_offsets[static_cast<std::size_t>(d)] +
                                     crystal.sample_drift_hz(rng);
            txs.push_back(std::move(tx));
        }
        ns::channel::channel_config config;
        const std::size_t samples =
            (rxp.frame.preamble_symbols + rxp.frame.payload_plus_crc_bits()) *
            phy_a.samples_per_symbol();
        ns::channel::channel_workspace chan_ws;
        const ns::dsp::cvec stream = ns::channel::combine(
            std::span<const ns::channel::tx_contribution>(txs), samples, phy_a,
            config, rng, chan_ws);
        const auto result = receiver.decode(stream, 0);
        for (const auto& report : result.reports) {
            if (report.detected) offsets.push_back(report.estimated_tone_offset_hz);
        }
    }
    ns::util::text_table cdf_a("Fig 14a: CDF of receiver-estimated frequency offsets (64 devices, 16 rounds)",
                               {"frequency [Hz]", "CDF"});
    for (double x : {-150.0, -100.0, -75.0, -50.0, -25.0, 0.0, 25.0, 50.0, 75.0,
                     100.0, 150.0}) {
        cdf_a.add_row({ns::util::format_double(x, 0),
                       ns::util::format_double(ns::util::cdf_at(offsets, x), 3)});
    }
    cdf_a.print(std::cout);
    std::cout << "paper shape: all offsets within +-150 Hz (~0.15 bin)\n\n";

    // --- (b) residual DeltaFFTbin per configuration ----------------------
    const std::vector<ns::phy::css_params> configs = {
        {.bandwidth_hz = 500e3, .spreading_factor = 9},
        {.bandwidth_hz = 250e3, .spreading_factor = 8},
        {.bandwidth_hz = 125e3, .spreading_factor = 7},
    };
    const ns::channel::hardware_delay_model delay{};  // up to 3.5 us jitter

    std::vector<std::vector<double>> residuals(configs.size());
    for (std::size_t c = 0; c < configs.size(); ++c) {
        for (int packet = 0; packet < 20000; ++packet) {
            // Jitter relative to the mean (receivers sync to the average
            // response latency during association).
            const double dt = delay.sample_s(rng) - delay.mean_us * 1e-6;
            const double df = crystal.sample_drift_hz(rng);
            residuals[c].push_back(std::abs(configs[c].bins_from_time_offset(dt) +
                                            configs[c].bins_from_frequency_offset(df)));
        }
    }

    ns::util::text_table ccdf("Fig 14b: 1-CDF of residual DeltaFFTbin",
                              {"DeltaFFTbin", "BW=500k,SF=9", "BW=250k,SF=8",
                               "BW=125k,SF=7"});
    for (double x : {0.0, 0.25, 0.5, 0.75, 1.0, 1.25, 1.5, 2.0}) {
        std::vector<std::string> row{ns::util::format_double(x, 2)};
        for (std::size_t c = 0; c < configs.size(); ++c) {
            row.push_back(
                ns::util::format_double(ns::util::ccdf_at(residuals[c], x), 4));
        }
        ccdf.add_row(row);
    }
    ccdf.print(std::cout);
    std::cout << "\npaper shape: wider BW shifts more probability mass toward "
                 "larger DeltaFFTbin (DeltaFFTbin = Δt*BW), residuals stay under "
                 "~1 bin -> one empty bin between devices (SKIP=2) suffices; the "
                 "narrowest configuration is dominated by CFO instead.\n";
    return 0;
}
