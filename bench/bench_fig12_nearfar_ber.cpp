// Fig. 12 — near-far BER with power-aware cyclic-shift assignment.
//
// Victim at FFT bin 2, interferer at bin 258 (the §3.2.3 simulation
// setup), each with Gaussian frequency mismatch of sigma = 300 Hz. The
// interferer transmits 35/40/45 dB *stronger* than the victim; we sweep
// the victim's SNR from -20 to -10 dB and measure its ON-OFF bit error
// rate, against the single-device baseline.
//
// Paper shape: the BER curve is unaffected up to ~40 dB of power
// difference (in practice 35 dB, §4.3) and degrades at 45 dB.
#include <cmath>
#include <iostream>
#include <vector>

#include "netscatter/channel/awgn.hpp"
#include "netscatter/dsp/vector_ops.hpp"
#include "netscatter/phy/chirp.hpp"
#include "netscatter/phy/demodulator.hpp"
#include "netscatter/util/rng.hpp"
#include "netscatter/util/table.hpp"

namespace {

// OOK BER of the victim for one (snr, interferer power) point.
double measure_ber(double victim_snr_db, double interferer_offset_db,
                   bool interferer_present, std::size_t symbols, ns::util::rng& rng) {
    const ns::phy::css_params phy = ns::phy::deployed_params();
    const ns::phy::demodulator demod(phy, 4);
    const std::uint32_t victim_bin = 2, interferer_bin = 258;

    const double victim_amplitude = std::sqrt(std::pow(10.0, victim_snr_db / 10.0));
    const double interferer_amplitude =
        victim_amplitude * std::pow(10.0, interferer_offset_db / 20.0);
    const double n = static_cast<double>(phy.num_bins());
    // Clean peak power of the victim after dechirp+FFT: (N * A)^2;
    // slice at half of that (the receiver's preamble-average threshold).
    const double threshold = 0.5 * (n * victim_amplitude) * (n * victim_amplitude);

    std::size_t errors = 0;
    for (std::size_t s = 0; s < symbols; ++s) {
        const bool bit = rng.bernoulli(0.5);
        ns::dsp::cvec rx(phy.samples_per_symbol(), ns::dsp::cplx{0.0, 0.0});
        if (bit) {
            // Victim chirp with its per-symbol frequency mismatch.
            const double df = rng.gaussian(0.0, 300.0);
            ns::dsp::cvec chirp = ns::phy::make_upchirp(
                phy, static_cast<double>(victim_bin) +
                         phy.bins_from_frequency_offset(df));
            ns::dsp::scale(chirp, ns::dsp::cplx{victim_amplitude, 0.0});
            ns::dsp::accumulate(rx, chirp);
        }
        if (interferer_present && rng.bernoulli(0.5)) {
            const double df = rng.gaussian(0.0, 300.0);
            ns::dsp::cvec chirp = ns::phy::make_upchirp(
                phy, static_cast<double>(interferer_bin) +
                         phy.bins_from_frequency_offset(df));
            ns::dsp::scale(chirp,
                           std::polar(interferer_amplitude, rng.uniform(0.0, 6.2831)));
            ns::dsp::accumulate(rx, chirp);
        }
        ns::channel::add_noise(rx, 1.0, rng);

        const auto power = demod.symbol_power_spectrum(rx);
        const bool decided = demod.power_at_bin(power, victim_bin) > threshold;
        if (decided != bit) ++errors;
    }
    return static_cast<double>(errors) / static_cast<double>(symbols);
}

}  // namespace

int main() {
    ns::util::rng rng(12);
    const std::size_t symbols = 2000;

    ns::util::text_table table(
        "Fig 12: victim BER vs SNR for interferer power offsets (bins 2 vs 258)",
        {"SNR [dB]", "one device", "+35 dB", "+40 dB", "+45 dB"});

    for (double snr = -20.0; snr <= -10.0; snr += 2.0) {
        std::vector<std::string> row{ns::util::format_double(snr, 0)};
        row.push_back(
            ns::util::format_double(measure_ber(snr, 0.0, false, symbols, rng), 4));
        for (double offset : {35.0, 40.0, 45.0}) {
            row.push_back(
                ns::util::format_double(measure_ber(snr, offset, true, symbols, rng), 4));
        }
        table.add_row(row);
    }
    table.print(std::cout);
    std::cout << "\npaper shape: +35/+40 dB curves hug the single-device curve; "
                 "+45 dB departs. BER ~1e-1 at -20 dB falling below 1e-3 by "
                 "-14..-12 dB.\n(" << symbols << " symbols per point)\n";
    return 0;
}
