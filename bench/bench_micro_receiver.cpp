// Receiver micro-bench (§3.1 complexity claim + §3.2 fast path).
//
// Two measurements:
//  1. The paper's receiver-complexity claim: dechirp + one FFT serve
//     every concurrent device, so per-symbol demodulation cost is nearly
//     constant with the device count.
//  2. The symbol-domain fast path: end-to-end round cost (transmit-side
//     synthesis + channel superposition vs receiver decode) under
//     phy_fidelity::sample and ::symbol at increasing concurrency, with
//     the per-round synth/decode wall-clock split and the resulting
//     round-throughput speedup recorded in BENCH_micro_receiver.json —
//     the perf claims are measured, not asserted.
#include <cstdlib>
#include <iostream>
#include <string>

#include "bench_report.hpp"
#include "netscatter/channel/awgn.hpp"
#include "netscatter/dsp/fft.hpp"
#include "netscatter/dsp/vector_ops.hpp"
#include "netscatter/phy/chirp.hpp"
#include "netscatter/phy/demodulator.hpp"
#include "netscatter/phy/modulator.hpp"
#include "netscatter/sim/deployment.hpp"
#include "netscatter/sim/network_sim.hpp"
#include "netscatter/util/rng.hpp"
#include "netscatter/util/table.hpp"

namespace {

// Builds one superposed payload symbol from `n` concurrent devices.
ns::dsp::cvec make_superposed_symbol(std::size_t n_devices, ns::util::rng& rng) {
    const auto phy = ns::phy::deployed_params();
    ns::dsp::cvec rx(phy.samples_per_symbol(), ns::dsp::cplx{0.0, 0.0});
    const std::size_t stride = phy.num_bins() / std::max<std::size_t>(n_devices, 1);
    for (std::size_t d = 0; d < n_devices; ++d) {
        ns::dsp::cvec chirp = ns::phy::make_upchirp(
            phy, static_cast<double>(d * stride % phy.num_bins()));
        ns::dsp::accumulate(rx, chirp);
    }
    ns::channel::add_noise(rx, 1.0, rng);
    return rx;
}

// Per-symbol demodulation of all N devices: dechirp + FFT + N bin reads.
double symbol_demod_us(std::size_t n_devices, std::size_t repeats) {
    const auto phy = ns::phy::deployed_params();
    ns::util::rng rng(1);
    const ns::dsp::cvec symbol = make_superposed_symbol(n_devices, rng);
    const ns::phy::demodulator demod(phy, 8);
    const std::size_t stride = phy.num_bins() / std::max<std::size_t>(n_devices, 1);

    const bench::stopwatch clock;
    double sink = 0.0;
    for (std::size_t r = 0; r < repeats; ++r) {
        const auto power = demod.symbol_power_spectrum(symbol);
        for (std::size_t d = 0; d < n_devices; ++d) {
            sink += demod.power_at_bin(
                power, static_cast<std::uint32_t>(d * stride % phy.num_bins()));
        }
    }
    if (sink < 0.0) std::cout << sink;  // defeat dead-code elimination
    return clock.seconds() * 1e6 / static_cast<double>(repeats);
}

struct fidelity_point {
    std::size_t devices = 0;
    double synth_ms_per_round = 0.0;
    double decode_ms_per_round = 0.0;
    double rounds_per_s = 0.0;
    double delivery_rate = 0.0;
};

// Runs the full simulator (association + rounds) at the given fidelity
// and reports the per-round synth/decode wall-clock split. Populations
// above one concurrency group run as §3.3.3 scheduled groups.
fidelity_point run_fidelity(std::size_t devices, std::size_t rounds,
                            ns::sim::phy_fidelity fidelity) {
    ns::sim::deployment_params dep_params;
    dep_params.floor_width_m = 60.0;
    dep_params.floor_depth_m = 60.0;
    dep_params.rooms_x = 1;
    dep_params.rooms_y = 1;
    dep_params.min_distance_m = 2.0;
    dep_params.pathloss.wall_loss_db = 0.0;
    const ns::sim::deployment dep(dep_params, devices, 7);

    ns::sim::sim_config config;
    config.zero_padding = 4;
    config.rounds = rounds;
    config.seed = 11;
    config.fidelity = fidelity;
    if (devices > 250) {
        config.grouping.enabled = true;
        config.grouping.group_capacity = 250;
    }
    ns::sim::network_simulator sim(dep, config);
    const ns::sim::sim_result result = sim.run();

    fidelity_point point;
    point.devices = devices;
    const double n_rounds = static_cast<double>(result.rounds.size());
    point.synth_ms_per_round = result.synth_wall_s * 1e3 / n_rounds;
    point.decode_ms_per_round = result.decode_wall_s * 1e3 / n_rounds;
    const double loop_s = result.synth_wall_s + result.decode_wall_s;
    point.rounds_per_s = loop_s > 0.0 ? n_rounds / loop_s : 0.0;
    point.delivery_rate = result.delivery_rate();
    return point;
}

}  // namespace

int main() {
    const bool quick = std::getenv("NS_BENCH_QUICK") != nullptr;
    bench::bench_report report("micro_receiver");
    const bench::stopwatch clock;

    // --- 1. Receiver complexity vs concurrency (one FFT serves all) ----
    ns::util::text_table demod_table(
        "Per-symbol demodulation (dechirp + one FFT + N bin reads)",
        {"# devices", "us/symbol"});
    const std::size_t repeats = quick ? 50 : 400;
    for (const std::size_t n : {1ul, 16ul, 64ul, 128ul, 256ul}) {
        const double us = symbol_demod_us(n, repeats);
        demod_table.add_row({std::to_string(n), ns::util::format_double(us, 1)});
        report.add_section_point("symbol_demod",
                                 {{"num_devices", static_cast<double>(n)},
                                  {"us_per_symbol", us}});
    }
    demod_table.print(std::cout);

    // --- 2. Sample vs symbol fidelity: per-round synth/decode split ----
    ns::util::text_table split_table(
        "Round loop wall-clock split: sample vs symbol fidelity",
        {"# devices", "synth smp [ms]", "decode smp [ms]", "synth sym [ms]",
         "decode sym [ms]", "rounds/s smp", "rounds/s sym", "speedup"});
    const std::size_t rounds = quick ? 4 : 8;
    for (const std::size_t devices : {256ul, 1000ul, 10000ul}) {
        if (quick && devices > 1000) continue;
        const fidelity_point sample =
            run_fidelity(devices, rounds, ns::sim::phy_fidelity::sample);
        const fidelity_point symbol =
            run_fidelity(devices, rounds, ns::sim::phy_fidelity::symbol);
        const double speedup = sample.rounds_per_s > 0.0
                                   ? symbol.rounds_per_s / sample.rounds_per_s
                                   : 0.0;
        split_table.add_row(
            {std::to_string(devices),
             ns::util::format_double(sample.synth_ms_per_round, 2),
             ns::util::format_double(sample.decode_ms_per_round, 2),
             ns::util::format_double(symbol.synth_ms_per_round, 2),
             ns::util::format_double(symbol.decode_ms_per_round, 2),
             ns::util::format_double(sample.rounds_per_s, 1),
             ns::util::format_double(symbol.rounds_per_s, 1),
             ns::util::format_double(speedup, 1) + "x"});
        report.add_point(
            {{"num_devices", static_cast<double>(devices)},
             {"sample_synth_ms_per_round", sample.synth_ms_per_round},
             {"sample_decode_ms_per_round", sample.decode_ms_per_round},
             {"symbol_synth_ms_per_round", symbol.synth_ms_per_round},
             {"symbol_decode_ms_per_round", symbol.decode_ms_per_round},
             {"sample_rounds_per_s", sample.rounds_per_s},
             {"symbol_rounds_per_s", symbol.rounds_per_s},
             {"sample_delivery_rate", sample.delivery_rate},
             {"symbol_delivery_rate", symbol.delivery_rate},
             {"round_throughput_speedup", speedup}});
    }
    split_table.print(std::cout);
    std::cout << "\n(symbol fidelity = analytic Dirichlet-kernel synthesis; "
                 "sample fidelity = full time-domain superposition)\n";

    report.set_scalar("wall_clock_s", clock.seconds());
    report.write();
    return 0;
}
