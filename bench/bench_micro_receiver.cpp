// Micro-benchmarks (google-benchmark) for the §3.1 receiver-complexity
// claim: "the receiver complexity is nearly constant with the number of
// devices" — dechirp + one FFT serve every concurrent device; only the
// per-bin inspection scales (trivially) with N.
#include <benchmark/benchmark.h>

#include "netscatter/channel/awgn.hpp"
#include "netscatter/channel/superposition.hpp"
#include "netscatter/dsp/fft.hpp"
#include "netscatter/dsp/vector_ops.hpp"
#include "netscatter/phy/chirp.hpp"
#include "netscatter/phy/demodulator.hpp"
#include "netscatter/phy/modulator.hpp"
#include "netscatter/rx/receiver.hpp"
#include "netscatter/util/rng.hpp"

namespace {

// Builds one superposed payload symbol from `n` concurrent devices.
ns::dsp::cvec make_superposed_symbol(std::size_t n_devices, ns::util::rng& rng) {
    const auto phy = ns::phy::deployed_params();
    ns::dsp::cvec rx(phy.samples_per_symbol(), ns::dsp::cplx{0.0, 0.0});
    const std::size_t stride = phy.num_bins() / std::max<std::size_t>(n_devices, 1);
    for (std::size_t d = 0; d < n_devices; ++d) {
        ns::dsp::cvec chirp = ns::phy::make_upchirp(
            phy, static_cast<double>(d * stride % phy.num_bins()));
        ns::dsp::accumulate(rx, chirp);
    }
    ns::channel::add_noise(rx, 1.0, rng);
    return rx;
}

// Per-symbol demodulation of all N devices: dechirp + FFT + N bin reads.
void bm_symbol_demod_vs_devices(benchmark::State& state) {
    const auto n_devices = static_cast<std::size_t>(state.range(0));
    const auto phy = ns::phy::deployed_params();
    ns::util::rng rng(1);
    const ns::dsp::cvec symbol = make_superposed_symbol(n_devices, rng);
    const ns::phy::demodulator demod(phy, 8);
    const std::size_t stride = phy.num_bins() / std::max<std::size_t>(n_devices, 1);

    for (auto _ : state) {
        const auto power = demod.symbol_power_spectrum(symbol);
        double total = 0.0;
        for (std::size_t d = 0; d < n_devices; ++d) {
            total += demod.power_at_bin(
                power, static_cast<std::uint32_t>(d * stride % phy.num_bins()));
        }
        benchmark::DoNotOptimize(total);
    }
    state.SetLabel(std::to_string(n_devices) + " devices, one FFT");
}
BENCHMARK(bm_symbol_demod_vs_devices)->Arg(1)->Arg(16)->Arg(64)->Arg(128)->Arg(256);

// The FFT kernel itself across the sizes the system uses.
void bm_fft(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    ns::util::rng rng(2);
    ns::dsp::cvec data(n);
    for (auto& x : data) x = ns::dsp::cplx{rng.gaussian(), rng.gaussian()};
    for (auto _ : state) {
        ns::dsp::cvec copy = data;
        ns::dsp::fft_inplace(copy);
        benchmark::DoNotOptimize(copy.data());
    }
}
BENCHMARK(bm_fft)->Arg(512)->Arg(1024)->Arg(4096)->Arg(8192);

// Device-side modulation cost (what the FPGA does): one packet.
void bm_modulate_packet(benchmark::State& state) {
    const auto phy = ns::phy::deployed_params();
    const auto frame = ns::phy::linklayer_format();
    ns::util::rng rng(3);
    const ns::phy::distributed_modulator mod(phy, 100);
    const auto bits = ns::phy::build_frame_bits(frame, rng.bits(frame.payload_bits));
    for (auto _ : state) {
        auto packet = mod.modulate_packet(bits);
        benchmark::DoNotOptimize(packet.data());
    }
}
BENCHMARK(bm_modulate_packet);

// Full-round decode (preamble detection + 40 payload symbols) vs devices.
void bm_full_round_decode(benchmark::State& state) {
    const auto n_devices = static_cast<std::size_t>(state.range(0));
    ns::rx::receiver_params rxp;
    rxp.phy = ns::phy::deployed_params();
    rxp.frame = ns::phy::linklayer_format();
    ns::rx::receiver rx(rxp);
    ns::util::rng rng(4);

    const std::size_t stride =
        rxp.phy.num_bins() / std::max<std::size_t>(n_devices, 1);
    std::vector<std::uint32_t> shifts;
    std::vector<ns::channel::tx_contribution> txs;
    for (std::size_t d = 0; d < n_devices; ++d) {
        const auto shift =
            static_cast<std::uint32_t>(d * stride % rxp.phy.num_bins());
        shifts.push_back(shift);
        ns::phy::distributed_modulator mod(rxp.phy, shift);
        ns::channel::tx_contribution tx;
        tx.waveform = mod.modulate_packet(
            ns::phy::build_frame_bits(rxp.frame, rng.bits(rxp.frame.payload_bits)));
        tx.snr_db = 5.0;
        txs.push_back(std::move(tx));
    }
    rx.set_registered_shifts(shifts);
    const std::size_t samples =
        (rxp.frame.preamble_symbols + rxp.frame.payload_plus_crc_bits()) *
        rxp.phy.samples_per_symbol();
    ns::channel::channel_config config;
    const auto stream = ns::channel::combine(txs, samples, rxp.phy, config, rng);

    for (auto _ : state) {
        const auto result = rx.decode(stream, 0);
        benchmark::DoNotOptimize(result.reports.data());
    }
    state.SetLabel(std::to_string(n_devices) + " devices");
}
BENCHMARK(bm_full_round_decode)->Arg(1)->Arg(64)->Arg(256)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
