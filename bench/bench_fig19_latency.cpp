// Fig. 19 — network latency (time to collect the payload from every
// device) vs number of devices.
//
// Paper shape: NetScatter's latency is one concurrent round (~49 ms for
// Config 1, ~60 ms for Config 2) and *independent of N*, while TDMA
// baselines grow linearly to seconds. Reductions at 256 devices: 67.0x /
// 55.1x over fixed LoRa-BS and 15.3x / 12.6x over rate-adapted.
#include <iostream>

#include "netscatter/baseline/lora_link.hpp"
#include "netscatter/sim/deployment.hpp"
#include "netscatter/sim/timeline.hpp"
#include "netscatter/util/table.hpp"
#include "bench_report.hpp"
#include "netsim_sweep.hpp"

int main() {
    const bench::stopwatch clock;
    bench::bench_report report("fig19_latency");
    const auto frame = ns::phy::linklayer_format();
    const auto phy = ns::phy::deployed_params();

    ns::util::text_table table(
        "Fig 19: network latency [ms] vs # devices",
        {"# devices", "LoRa-BS fixed", "LoRa-BS rate-adapt", "NetScatter cfg1",
         "NetScatter cfg2"});

    const auto cfg1 = ns::sim::netscatter_round(frame, phy, ns::sim::query_config::config1);
    const auto cfg2 = ns::sim::netscatter_round(frame, phy, ns::sim::query_config::config2);

    std::vector<double> rssi_256;
    for (std::size_t n : bench::paper_device_counts()) {
        const ns::sim::deployment dep(ns::sim::deployment_params{}, n, 19);
        std::vector<double> rssi;
        for (const auto& device : dep.devices()) rssi.push_back(device.uplink_rx_dbm);
        if (n == 256) rssi_256 = rssi;

        const auto lora = ns::baseline::fixed_rate_network(frame, n);
        const auto adapted = ns::baseline::rate_adapted_network(frame, rssi);
        report.add_point({{"num_devices", static_cast<double>(n)},
                          {"lora_fixed_latency_ms", lora.latency_s * 1e3},
                          {"lora_adapted_latency_ms", adapted.latency_s * 1e3},
                          {"netscatter_cfg1_latency_ms", cfg1.total_time_s * 1e3},
                          {"netscatter_cfg2_latency_ms", cfg2.total_time_s * 1e3}});
        table.add_row({std::to_string(n),
                       ns::util::format_double(lora.latency_s * 1e3, 0),
                       ns::util::format_double(adapted.latency_s * 1e3, 0),
                       ns::util::format_double(cfg1.total_time_s * 1e3, 1),
                       ns::util::format_double(cfg2.total_time_s * 1e3, 1)});
    }
    table.print(std::cout);

    const auto lora = ns::baseline::fixed_rate_network(frame, 256);
    const auto adapted = ns::baseline::rate_adapted_network(frame, rssi_256);
    std::cout << "\nat 256 devices: cfg1 latency reduction "
              << ns::util::format_double(lora.latency_s / cfg1.total_time_s, 1)
              << "x over fixed (paper 67.0x), "
              << ns::util::format_double(adapted.latency_s / cfg1.total_time_s, 1)
              << "x over rate-adapted (paper 15.3x); cfg2: "
              << ns::util::format_double(lora.latency_s / cfg2.total_time_s, 1)
              << "x (paper 55.1x), "
              << ns::util::format_double(adapted.latency_s / cfg2.total_time_s, 1)
              << "x (paper 12.6x)\n"
              << "note: AP query airtime is negligible for cfg1 and still "
                 "non-dominant for cfg2 (payload dominates), as §4.4 observes\n";
    report.set_scalar("wall_clock_s", clock.seconds());
    report.write();
    return 0;
}
