// Scenario matrix bench: every registered scenario at a reduced round
// count, one JSON point per scenario — the coarse "is every workload
// still healthy, and what does it cost" trajectory tracked across PRs
// (full per-round series come from the netscatter_sim CLI).
#include <cstdlib>
#include <iostream>

#include "bench_report.hpp"
#include "netscatter/scenario/scenario_registry.hpp"
#include "netscatter/scenario/scenario_runner.hpp"
#include "netscatter/util/table.hpp"

int main() {
    const std::size_t rounds =
        std::getenv("NS_BENCH_SCENARIO_ROUNDS")
            ? static_cast<std::size_t>(
                  std::atoll(std::getenv("NS_BENCH_SCENARIO_ROUNDS")))
            : 6;

    bench::bench_report report("scenario_matrix");
    bench::stopwatch clock;

    ns::util::text_table table(
        "Scenario matrix (" + std::to_string(rounds) + " rounds/replica)",
        {"scenario", "devices", "groups", "delivery", "skip", "idle", "joins",
         "wall [s]"});

    for (auto spec : ns::scenario::registry()) {
        spec.sim.rounds = rounds;
        const auto result = ns::scenario::run_scenario(spec);
        table.add_row({spec.name, std::to_string(spec.geometry.num_devices),
                       result.num_groups == 0 ? "-" : std::to_string(result.num_groups),
                       ns::util::format_double(100.0 * result.sim.delivery_rate(), 1) + " %",
                       ns::util::format_double(100.0 * result.sim.skip_rate(), 1) + " %",
                       ns::util::format_double(100.0 * result.sim.idle_rate(), 1) + " %",
                       std::to_string(result.sim.total_joins),
                       ns::util::format_double(result.wall_clock_s, 2)});
        report.add_point(
            {{"scenario", spec.name},
             {"num_devices", static_cast<double>(spec.geometry.num_devices)},
             {"num_groups", static_cast<double>(result.num_groups)},
             {"delivery_rate", result.sim.delivery_rate()},
             {"throughput_bps", result.throughput_bps()},
             {"skip_rate", result.sim.skip_rate()},
             {"idle_rate", result.sim.idle_rate()},
             {"joins", static_cast<double>(result.sim.total_joins)},
             {"leaves", static_cast<double>(result.sim.total_leaves)},
             {"realloc_events", static_cast<double>(result.sim.total_realloc_events)},
             {"regroups", static_cast<double>(result.sim.total_regroups)},
             {"control_overhead_s", result.control_overhead_s},
             {"association_collisions",
              static_cast<double>(result.stats.association_collisions)},
             {"mean_reassoc_latency_rounds", result.stats.mean_join_latency_rounds()},
             {"wall_clock_s", result.wall_clock_s}});
    }

    table.print(std::cout);
    report.set_scalar("rounds_per_replica", static_cast<double>(rounds));
    report.set_scalar("wall_clock_s", clock.seconds());
    report.write();
    return 0;
}
