// Scenario matrix bench: every registered scenario at a reduced round
// count, one JSON point per scenario — the coarse "is every workload
// still healthy, and what does it cost" trajectory tracked across PRs
// (full per-round series come from the netscatter_sim CLI).
//
// On top of the per-scenario sweep, the matrix runs a fidelity A/B on
// the grouped 1k-device workload: the same spec under
// phy_fidelity::sample and ::symbol at equal thread count, recording
// both round throughputs and their ratio — the measured (not asserted)
// speedup of the symbol-domain fast path.
#include <cstdlib>
#include <iostream>
#include <new>

#include "bench_report.hpp"
#include "netscatter/obs/metrics.hpp"
#include "netscatter/scenario/scenario_registry.hpp"
#include "netscatter/scenario/scenario_runner.hpp"
#include "netscatter/util/table.hpp"

// Allocation hook feeding the thread-local obs counters, so the matrix
// can report steady-state allocations per round for every workload.
// -Wmismatched-new-delete false-positives when GCC inlines only one side
// of the replaced malloc/free pair (see apps/netscatter_sim.cpp).
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif
void* operator new(std::size_t size) {
    ns::obs::record_allocation(size);
    if (void* ptr = std::malloc(size == 0 ? 1 : size)) return ptr;
    throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* ptr) noexcept { std::free(ptr); }
void operator delete(void* ptr, std::size_t) noexcept { std::free(ptr); }
void operator delete[](void* ptr) noexcept { std::free(ptr); }
void operator delete[](void* ptr, std::size_t) noexcept { std::free(ptr); }
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

namespace {

/// Rounds decoded per second of round-loop host time (synthesis +
/// decode, association and deployment construction excluded).
double rounds_per_second(const ns::scenario::scenario_result& result) {
    const double loop_s = result.sim.synth_wall_s + result.sim.decode_wall_s;
    if (loop_s <= 0.0) return 0.0;
    return static_cast<double>(result.sim.rounds.size()) / loop_s;
}

/// Mean heap allocations per post-warmup round (alloc.* counters of the
/// merged metrics snapshot; 0 when no steady rounds ran).
double steady_allocs_per_round(const ns::scenario::scenario_result& result) {
    const std::uint64_t steady_rounds =
        result.sim.metrics.counter_value("alloc.steady_rounds");
    if (steady_rounds == 0) return 0.0;
    return static_cast<double>(
               result.sim.metrics.counter_value("alloc.steady_count")) /
           static_cast<double>(steady_rounds);
}

}  // namespace

int main() {
    const std::size_t rounds =
        std::getenv("NS_BENCH_SCENARIO_ROUNDS")
            ? static_cast<std::size_t>(
                  std::atoll(std::getenv("NS_BENCH_SCENARIO_ROUNDS")))
            : 6;

    bench::bench_report report("scenario_matrix");
    bench::stopwatch clock;

    ns::util::text_table table(
        "Scenario matrix (" + std::to_string(rounds) + " rounds/replica)",
        {"scenario", "devices", "groups", "delivery", "skip", "idle", "joins",
         "synth [ms/rd]", "decode [ms/rd]", "wall [s]"});

    for (auto spec : ns::scenario::registry()) {
        spec.sim.rounds = rounds;
        const auto result = ns::scenario::run_scenario(spec);
        const double n_rounds =
            std::max<double>(1.0, static_cast<double>(result.sim.rounds.size()));
        table.add_row({spec.name, std::to_string(spec.geometry.num_devices),
                       result.num_groups == 0 ? "-" : std::to_string(result.num_groups),
                       ns::util::format_double(100.0 * result.sim.delivery_rate(), 1) + " %",
                       ns::util::format_double(100.0 * result.sim.skip_rate(), 1) + " %",
                       ns::util::format_double(100.0 * result.sim.idle_rate(), 1) + " %",
                       std::to_string(result.sim.total_joins),
                       ns::util::format_double(result.sim.synth_wall_s * 1e3 / n_rounds, 2),
                       ns::util::format_double(result.sim.decode_wall_s * 1e3 / n_rounds, 2),
                       ns::util::format_double(result.wall_clock_s, 2)});
        report.add_point(
            {{"scenario", spec.name},
             {"num_devices", static_cast<double>(spec.geometry.num_devices)},
             {"num_groups", static_cast<double>(result.num_groups)},
             {"delivery_rate", result.sim.delivery_rate()},
             {"throughput_bps", result.throughput_bps()},
             {"skip_rate", result.sim.skip_rate()},
             {"idle_rate", result.sim.idle_rate()},
             {"joins", static_cast<double>(result.sim.total_joins)},
             {"leaves", static_cast<double>(result.sim.total_leaves)},
             {"realloc_events", static_cast<double>(result.sim.total_realloc_events)},
             {"regroups", static_cast<double>(result.sim.total_regroups)},
             {"control_overhead_s", result.control_overhead_s},
             {"association_collisions",
              static_cast<double>(result.stats.association_collisions)},
             {"mean_reassoc_latency_rounds", result.stats.mean_join_latency_rounds()},
             {"cross_tx", static_cast<double>(result.sim.total_cross_tx)},
             {"cross_collisions",
              static_cast<double>(result.sim.total_cross_collisions)},
             {"fast_path_rounds", static_cast<double>(result.sim.fast_path_rounds)},
             {"steady_allocs_per_round", steady_allocs_per_round(result)},
             {"synth_ms_per_round", result.sim.synth_wall_s * 1e3 / n_rounds},
             {"decode_ms_per_round", result.sim.decode_wall_s * 1e3 / n_rounds},
             {"wall_clock_s", result.wall_clock_s}});
    }

    table.print(std::cout);

    // --- Fidelity A/B: warehouse-1k-grouped, sample vs symbol ----------
    // Equal thread count (the scenario runner's default policy for both
    // runs); round throughput counts only the round loop, so the shared
    // association/deployment setup does not dilute the comparison.
    {
        auto spec = *ns::scenario::find_scenario("warehouse-1k-grouped");
        spec.sim.rounds = std::max<std::size_t>(rounds, 12);
        spec.sim.fidelity = ns::sim::phy_fidelity::sample;
        const auto sample = ns::scenario::run_scenario(spec);
        spec.sim.fidelity = ns::sim::phy_fidelity::symbol;
        const auto symbol = ns::scenario::run_scenario(spec);
        const double sample_rps = rounds_per_second(sample);
        const double symbol_rps = rounds_per_second(symbol);
        const double speedup = sample_rps > 0.0 ? symbol_rps / sample_rps : 0.0;
        std::cout << "\nwarehouse-1k-grouped round throughput: sample "
                  << ns::util::format_double(sample_rps, 1) << " rounds/s, symbol "
                  << ns::util::format_double(symbol_rps, 1) << " rounds/s ("
                  << ns::util::format_double(speedup, 1) << "x)\n";
        report.set_scalar("warehouse_1k_sample_rounds_per_s", sample_rps);
        report.set_scalar("warehouse_1k_symbol_rounds_per_s", symbol_rps);
        report.set_scalar("warehouse_1k_fast_path_speedup", speedup);
        report.set_scalar("warehouse_1k_sample_delivery", sample.sim.delivery_rate());
        report.set_scalar("warehouse_1k_symbol_delivery", symbol.sim.delivery_rate());
    }

    // --- field-100k: full single replica, intra-round fan-out ----------
    // The flagship scale point at its real spec (not the reduced matrix
    // round count): one replica of 100k devices at SF12, symbol blocks
    // fanned across 8 intra-round threads. replica_wall_s is the
    // CI-gated wall-clock budget of ROADMAP item 1 ("a full field-100k
    // replica well under 100 ms").
    {
        auto spec = *ns::scenario::find_scenario("field-100k");
        spec.sim.intra_round_threads = 8;
        const auto result = ns::scenario::run_scenario(spec);
        const double replica_wall_s =
            result.sim.metrics.histogram_sum("replica.wall_s");
        std::cout << "\nfield-100k full replica (" << spec.sim.rounds
                  << " rounds, 8 intra-round threads): "
                  << ns::util::format_double(replica_wall_s * 1e3, 1)
                  << " ms\n";
        report.add_point(
            {{"scenario", "field-100k-full-replica"},
             {"num_devices", static_cast<double>(spec.geometry.num_devices)},
             {"delivery_rate", result.sim.delivery_rate()},
             {"fast_path_rounds",
              static_cast<double>(result.sim.fast_path_rounds)},
             {"steady_allocs_per_round", steady_allocs_per_round(result)},
             {"replica_wall_s", replica_wall_s}});
        report.set_scalar("field_100k_replica_wall_s", replica_wall_s);
    }

    report.set_scalar("rounds_per_replica", static_cast<double>(rounds));
    report.set_scalar("wall_clock_s", clock.seconds());
    report.write();
    return 0;
}
