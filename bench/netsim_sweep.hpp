// Shared helper for the network-evaluation benches (Figs. 17-19): sweep
// the device count over the paper's x-axis, run the sample-level
// simulator on a common office deployment, and hand back per-point
// delivery statistics plus the deployment RSSIs the rate-adaptation
// baseline needs.
//
// The sweep executes through the engine's deterministic Monte-Carlo
// runner: every (device-count, round-block) pair is an independent task
// on one shared thread pool, and results merge in task order, so the
// parallel sweep is bit-identical to `serial_options()` on any machine.
#pragma once

#include <cstdint>
#include <vector>

#include "netscatter/engine/mc_runner.hpp"
#include "netscatter/sim/deployment.hpp"
#include "netscatter/sim/network_sim.hpp"

namespace bench {

/// The x-axis of Figs. 17-19.
inline std::vector<std::size_t> paper_device_counts() {
    return {1, 16, 32, 64, 96, 128, 160, 192, 224, 256};
}

/// One sweep point: simulated delivery and the population's link budget.
struct sweep_point {
    std::size_t num_devices = 0;
    double mean_delivered = 0.0;   ///< devices delivered per round (sample-level)
    double delivery_rate = 0.0;    ///< delivered / transmitting
    std::vector<double> uplink_rssi_dbm;  ///< per-device backscatter RSSI at the AP
};

/// Default execution policy: all cores, one task per sweep point
/// (rounds_per_task = 0 keeps every point's rounds in one simulator, so
/// cross-round fading correlation and re-association behave exactly as
/// in the serial simulator; the ten points still fan out in parallel).
inline ns::engine::mc_options parallel_options() {
    return ns::engine::mc_options{.rounds_per_task = 0, .num_threads = 0,
                                  .parallel = true};
}

/// Serial reference: the same task decomposition on the calling thread.
inline ns::engine::mc_options serial_options() {
    ns::engine::mc_options options = parallel_options();
    options.parallel = false;
    return options;
}

/// Runs the simulator for each device count on deployments drawn with
/// `seed`. `rounds` concurrent rounds per point, executed per `options`.
inline std::vector<sweep_point> run_sweep(std::size_t rounds, std::uint64_t seed,
                                          ns::sim::sim_config base_config = {},
                                          ns::engine::mc_options options =
                                              parallel_options()) {
    std::vector<ns::engine::mc_job> jobs;
    for (std::size_t n : paper_device_counts()) {
        ns::engine::mc_job job;
        job.dep_params = ns::sim::deployment_params{};
        job.num_devices = n;
        job.deployment_seed = seed;
        job.config = base_config;
        job.config.rounds = rounds;
        job.config.seed = seed + n;
        job.config.zero_padding = 4;  // keep the sweep fast; +-0.5 bin search holds
        jobs.push_back(job);
    }

    const ns::engine::mc_runner runner(options);
    const ns::engine::batch_result batch = runner.run_batch(jobs);

    std::vector<sweep_point> points;
    points.reserve(jobs.size());
    for (std::size_t j = 0; j < jobs.size(); ++j) {
        sweep_point point;
        point.num_devices = jobs[j].num_devices;
        point.mean_delivered = batch.results[j].mean_delivered_per_round();
        point.delivery_rate = batch.results[j].delivery_rate();
        for (const auto& device : batch.deployments[j].devices()) {
            point.uplink_rssi_dbm.push_back(device.uplink_rx_dbm);
        }
        points.push_back(std::move(point));
    }
    return points;
}

}  // namespace bench
