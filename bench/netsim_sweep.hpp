// Shared helper for the network-evaluation benches (Figs. 17-19): sweep
// the device count over the paper's x-axis, run the sample-level
// simulator on a common office deployment, and hand back per-point
// delivery statistics plus the deployment RSSIs the rate-adaptation
// baseline needs.
#pragma once

#include <cstdint>
#include <vector>

#include "netscatter/sim/deployment.hpp"
#include "netscatter/sim/network_sim.hpp"

namespace bench {

/// The x-axis of Figs. 17-19.
inline std::vector<std::size_t> paper_device_counts() {
    return {1, 16, 32, 64, 96, 128, 160, 192, 224, 256};
}

/// One sweep point: simulated delivery and the population's link budget.
struct sweep_point {
    std::size_t num_devices = 0;
    double mean_delivered = 0.0;   ///< devices delivered per round (sample-level)
    double delivery_rate = 0.0;    ///< delivered / transmitting
    std::vector<double> uplink_rssi_dbm;  ///< per-device backscatter RSSI at the AP
};

/// Runs the simulator for each device count on deployments drawn with
/// `seed`. `rounds` concurrent rounds per point.
inline std::vector<sweep_point> run_sweep(std::size_t rounds, std::uint64_t seed,
                                          ns::sim::sim_config base_config = {}) {
    std::vector<sweep_point> points;
    for (std::size_t n : paper_device_counts()) {
        const ns::sim::deployment dep(ns::sim::deployment_params{}, n, seed);
        ns::sim::sim_config config = base_config;
        config.rounds = rounds;
        config.seed = seed + n;
        config.zero_padding = 4;  // keep the sweep fast; +-0.5 bin search holds
        ns::sim::network_simulator sim(dep, config);
        const ns::sim::sim_result result = sim.run();

        sweep_point point;
        point.num_devices = n;
        point.mean_delivered = result.mean_delivered_per_round();
        point.delivery_rate = result.delivery_rate();
        for (const auto& device : dep.devices()) {
            point.uplink_rssi_dbm.push_back(device.uplink_rx_dbm);
        }
        points.push_back(std::move(point));
    }
    return points;
}

}  // namespace bench
