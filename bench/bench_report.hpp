// Machine-readable bench output.
//
// Every bench prints its human-readable table as before, and *also*
// drops a BENCH_<name>.json file in the working directory with the sweep
// points and the wall-clock time, so the perf trajectory of the repo can
// be tracked across PRs by tooling instead of by eyeballing tables.
//
// The writer is a minimal flat schema — a top-level object of scalars
// plus one "points" array of flat objects — which covers every bench
// here without pulling in a JSON dependency.
#pragma once

#include <chrono>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace bench {

/// Wall-clock stopwatch started at construction.
class stopwatch {
public:
    stopwatch() : start_(std::chrono::steady_clock::now()) {}

    double seconds() const {
        return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
            .count();
    }

private:
    std::chrono::steady_clock::time_point start_;
};

/// Accumulates one bench run and writes BENCH_<name>.json.
class bench_report {
public:
    explicit bench_report(std::string name) : name_(std::move(name)) {}

    /// Adds a top-level scalar (e.g. wall_clock_s, speedup).
    void set_scalar(const std::string& key, double value) {
        scalars_.emplace_back(key, value);
    }

    /// Appends one point as flat key/value pairs.
    void add_point(std::vector<std::pair<std::string, double>> fields) {
        points_.push_back(std::move(fields));
    }

    /// Writes BENCH_<name>.json into the working directory and reports
    /// the path on stdout.
    void write() const {
        std::ostringstream out;
        out.precision(12);
        out << "{\n  \"bench\": \"" << name_ << "\"";
        for (const auto& [key, value] : scalars_) {
            out << ",\n  \"" << key << "\": " << value;
        }
        out << ",\n  \"points\": [";
        for (std::size_t i = 0; i < points_.size(); ++i) {
            out << (i == 0 ? "\n" : ",\n") << "    {";
            const auto& fields = points_[i];
            for (std::size_t f = 0; f < fields.size(); ++f) {
                out << (f == 0 ? "" : ", ") << "\"" << fields[f].first
                    << "\": " << fields[f].second;
            }
            out << "}";
        }
        out << "\n  ]\n}\n";

        const std::string path = "BENCH_" + name_ + ".json";
        std::ofstream file(path);
        if (!file) {
            std::cout << "\ncould not write " << path << "\n";
            return;
        }
        file << out.str();
        std::cout << "\nwrote " << path << "\n";
    }

private:
    std::string name_;
    std::vector<std::pair<std::string, double>> scalars_;
    std::vector<std::vector<std::pair<std::string, double>>> points_;
};

}  // namespace bench
