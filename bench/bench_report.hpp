// Machine-readable bench output.
//
// Every bench prints its human-readable table as before, and *also*
// drops a BENCH_<name>.json file in the working directory with the sweep
// points and the wall-clock time, so the perf trajectory of the repo can
// be tracked across PRs by tooling instead of by eyeballing tables.
//
// The writer is a minimal flat schema — a top-level object of scalars
// plus one "points" array of flat objects — which covers every bench
// here without pulling in a JSON dependency. Values may be numbers or
// strings; non-finite numbers (NaN/±inf from empty sweeps) are emitted
// as `null` and every string (names, keys, values) is escaped, so the
// output is always valid JSON.
#pragma once

#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "netscatter/obs/metrics.hpp"

namespace bench {

/// Wall-clock stopwatch started at construction.
class stopwatch {
public:
    stopwatch() : start_(std::chrono::steady_clock::now()) {}

    double seconds() const {
        return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
            .count();
    }

private:
    std::chrono::steady_clock::time_point start_;
};

/// A JSON scalar: number or string.
struct json_value {
    bool is_string = false;
    double number = 0.0;
    std::string text;

    json_value(double value) : number(value) {}  // any arithmetic type converts
    json_value(std::string value) : is_string(true), text(std::move(value)) {}
    json_value(const char* value) : is_string(true), text(value) {}
};

/// Escapes a string for inclusion in a JSON document (quotes,
/// backslashes and control characters).
inline std::string json_escape(const std::string& raw) {
    std::string out;
    out.reserve(raw.size());
    for (const char c : raw) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof(buf), "\\u%04x",
                                  static_cast<unsigned>(static_cast<unsigned char>(c)));
                    out += buf;
                } else {
                    out += c;
                }
        }
    }
    return out;
}

/// Accumulates one bench run and writes BENCH_<name>.json.
class bench_report {
public:
    explicit bench_report(std::string name) : name_(std::move(name)) {}

    /// Adds a top-level scalar (number or string).
    void set_scalar(const std::string& key, json_value value) {
        scalars_.emplace_back(key, std::move(value));
    }

    /// Appends one point as flat key/value pairs (numbers or strings).
    void add_point(std::vector<std::pair<std::string, json_value>> fields) {
        points_.push_back(std::move(fields));
    }

    /// Appends one point to a named auxiliary array (e.g. a per-group
    /// breakdown next to the per-round "points"). Sections are emitted
    /// after "points", in first-use order.
    void add_section_point(const std::string& section,
                           std::vector<std::pair<std::string, json_value>> fields) {
        for (auto& [name, points] : sections_) {
            if (name == section) {
                points.push_back(std::move(fields));
                return;
            }
        }
        sections_.emplace_back(section,
                               std::vector<std::vector<std::pair<std::string, json_value>>>{
                                   std::move(fields)});
    }

    /// Strip-timing mode: when set, write() drops every scalar and point
    /// field whose name the shared ns::obs::is_timing_name predicate
    /// classifies as timing (the *_s / *wall* families). The ONE
    /// predicate serves every emitter, so a new timer added anywhere in
    /// the stack is stripped here automatically — determinism diffs of
    /// two --strip-wallclock reports can never regress on timing noise.
    void set_strip_timing(bool strip) { strip_timing_ = strip; }
    bool strip_timing() const { return strip_timing_; }

    /// Writes the report to `path` (default: BENCH_<name>.json in the
    /// working directory) and reports the path on stdout.
    void write(const std::string& path = "") const {
        std::ostringstream out;
        out.precision(12);
        out << "{\n  \"bench\": \"" << json_escape(name_) << "\"";
        for (const auto& [key, value] : scalars_) {
            if (strip_timing_ && ns::obs::is_timing_name(key)) continue;
            out << ",\n  \"" << json_escape(key) << "\": ";
            emit(out, value);
        }
        emit_array(out, "points", points_, strip_timing_);
        for (const auto& [section, points] : sections_) {
            emit_array(out, section, points, strip_timing_);
        }
        out << "\n}\n";

        const std::string target = path.empty() ? "BENCH_" + name_ + ".json" : path;
        std::ofstream file(target);
        if (!file) {
            std::cout << "\ncould not write " << target << "\n";
            return;
        }
        file << out.str();
        std::cout << "\nwrote " << target << "\n";
    }

private:
    using point_list = std::vector<std::vector<std::pair<std::string, json_value>>>;

    /// Numbers print as-is; non-finite numbers (the JSON grammar has no
    /// nan/inf tokens) degrade to null; strings are quoted and escaped.
    static void emit(std::ostringstream& out, const json_value& value) {
        if (value.is_string) {
            out << "\"" << json_escape(value.text) << "\"";
        } else if (!std::isfinite(value.number)) {
            out << "null";
        } else {
            out << value.number;
        }
    }

    static void emit_array(std::ostringstream& out, const std::string& name,
                           const point_list& points, bool strip_timing) {
        out << ",\n  \"" << json_escape(name) << "\": [";
        for (std::size_t i = 0; i < points.size(); ++i) {
            out << (i == 0 ? "\n" : ",\n") << "    {";
            const auto& fields = points[i];
            bool first = true;
            for (std::size_t f = 0; f < fields.size(); ++f) {
                if (strip_timing && ns::obs::is_timing_name(fields[f].first)) {
                    continue;
                }
                out << (first ? "" : ", ") << "\"" << json_escape(fields[f].first)
                    << "\": ";
                emit(out, fields[f].second);
                first = false;
            }
            out << "}";
        }
        out << "\n  ]";
    }

    std::string name_;
    std::vector<std::pair<std::string, json_value>> scalars_;
    point_list points_;
    std::vector<std::pair<std::string, point_list>> sections_;
    bool strip_timing_ = false;
};

}  // namespace bench
