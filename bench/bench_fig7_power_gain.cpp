// Fig. 7a — backscatter power gain (normalized to the 0<->inf maximum)
// as a function of the Z0 impedance, plus the three discrete hardware
// levels (0 / -4 / -10 dB) and the impedances that realize them.
#include <iostream>
#include <limits>

#include "netscatter/device/impedance.hpp"
#include "netscatter/util/table.hpp"

int main() {
    constexpr double inf = std::numeric_limits<double>::infinity();

    ns::util::text_table curve("Fig 7a: power gain vs Z0 (Z1 = open circuit)",
                               {"Z0 [ohm]", "gain [dB]"});
    for (double z0 : {0.0, 10.0, 25.0, 50.0, 100.0, 200.0, 400.0, 600.0, 800.0, 1000.0}) {
        curve.add_row({ns::util::format_double(z0, 0),
                       ns::util::format_double(
                           ns::device::backscatter_power_gain_db(z0, inf), 1)});
    }
    curve.print(std::cout);
    std::cout << "paper shape: 0 dB at Z0=0 falling monotonically to ~-26..-30 dB "
                 "at Z0=1000 ohm\n\n";

    const ns::device::switch_network network;
    ns::util::text_table levels(
        "Fig 7b: switch-network power levels (hardware: 0/-4/-10 dB, SS4.3)",
        {"level", "gain [dB]", "Z0 [ohm]"});
    for (std::size_t level = 0; level < network.num_levels(); ++level) {
        levels.add_row({std::to_string(level),
                        ns::util::format_double(network.gain_db(level), 1),
                        ns::util::format_double(network.z0_ohm(level), 1)});
    }
    levels.print(std::cout);
    return 0;
}
