// Fig. 18 — link-layer data rate vs number of devices: NetScatter
// Config 1 (32-bit query) and Config 2 (1760-bit full-reassignment
// query) against LoRa backscatter without / with rate adaptation.
//
// Paper shape: NetScatter's shared preamble + single query amortize over
// all devices (linear scaling); TDMA baselines stay flat. Gains at 256
// devices: 61.9x / 50.9x over fixed LoRa-BS and 14.1x / 11.6x over
// rate-adapted, for Config 1 / Config 2.
#include <iostream>

#include "netscatter/baseline/lora_link.hpp"
#include "netscatter/sim/timeline.hpp"
#include "netscatter/util/table.hpp"
#include "bench_report.hpp"
#include "netsim_sweep.hpp"

int main() {
    const auto frame = ns::phy::linklayer_format();  // 40-bit payload+CRC (§4.4)
    const auto phy = ns::phy::deployed_params();

    ns::sim::sim_config base;
    base.frame = frame;
    const bench::stopwatch clock;
    const auto sweep = bench::run_sweep(/*rounds=*/3, /*seed=*/18, base);
    const double wall_s = clock.seconds();

    ns::util::text_table table(
        "Fig 18: link-layer data rate [kbps] vs # devices",
        {"# devices", "LoRa-BS fixed", "LoRa-BS rate-adapt", "NetScatter cfg1",
         "NetScatter cfg2"});

    bench::bench_report report("fig18_linklayer");
    report.set_scalar("wall_clock_s", wall_s);
    for (const auto& point : sweep) {
        const auto delivered = static_cast<std::size_t>(point.mean_delivered + 0.5);
        const auto lora = ns::baseline::fixed_rate_network(frame, point.num_devices);
        const auto adapted =
            ns::baseline::rate_adapted_network(frame, point.uplink_rssi_dbm);
        const auto cfg1 = ns::sim::netscatter_metrics(
            frame, phy, ns::sim::query_config::config1, delivered, point.num_devices);
        const auto cfg2 = ns::sim::netscatter_metrics(
            frame, phy, ns::sim::query_config::config2, delivered, point.num_devices);
        table.add_row({std::to_string(point.num_devices),
                       ns::util::format_double(lora.linklayer_rate_bps / 1e3, 2),
                       ns::util::format_double(adapted.linklayer_rate_bps / 1e3, 2),
                       ns::util::format_double(cfg1.linklayer_rate_bps / 1e3, 1),
                       ns::util::format_double(cfg2.linklayer_rate_bps / 1e3, 1)});
        report.add_point({{"num_devices", static_cast<double>(point.num_devices)},
                          {"mean_delivered", point.mean_delivered},
                          {"delivery_rate", point.delivery_rate},
                          {"linklayer_rate_kbps", cfg1.linklayer_rate_bps / 1e3}});
    }
    table.print(std::cout);

    const auto& last = sweep.back();
    const auto delivered = static_cast<std::size_t>(last.mean_delivered + 0.5);
    const auto lora = ns::baseline::fixed_rate_network(frame, 256);
    const auto adapted = ns::baseline::rate_adapted_network(frame, last.uplink_rssi_dbm);
    const auto cfg1 = ns::sim::netscatter_metrics(frame, phy,
                                                  ns::sim::query_config::config1,
                                                  delivered, 256);
    const auto cfg2 = ns::sim::netscatter_metrics(frame, phy,
                                                  ns::sim::query_config::config2,
                                                  delivered, 256);
    std::cout << "\nat 256 devices:"
              << " cfg1 gains: " << ns::util::format_double(
                     cfg1.linklayer_rate_bps / lora.linklayer_rate_bps, 1)
              << "x over fixed (paper 61.9x), " << ns::util::format_double(
                     cfg1.linklayer_rate_bps / adapted.linklayer_rate_bps, 1)
              << "x over rate-adapted (paper 14.1x);"
              << " cfg2 gains: " << ns::util::format_double(
                     cfg2.linklayer_rate_bps / lora.linklayer_rate_bps, 1)
              << "x (paper 50.9x), " << ns::util::format_double(
                     cfg2.linklayer_rate_bps / adapted.linklayer_rate_bps, 1)
              << "x (paper 11.6x)\n";

    report.write();
    return 0;
}
