// Ablation — the two near-far defenses of §3.2.3:
//   (a) coarse-grained power-aware cyclic-shift assignment, and
//   (b) fine-grained self-aware power adjustment,
// each toggled independently on the same 128-device office deployment.
#include <iostream>

#include "netscatter/sim/deployment.hpp"
#include "netscatter/sim/network_sim.hpp"
#include "netscatter/util/table.hpp"

int main() {
    const std::size_t devices = 128, rounds = 3;
    const ns::sim::deployment dep(ns::sim::deployment_params{}, devices, 23);

    ns::util::text_table table(
        "Ablation: near-far defenses (128 devices)",
        {"power-aware allocation", "power adaptation", "delivery rate", "BER"});

    for (const bool aware : {true, false}) {
        for (const bool adapt : {true, false}) {
            ns::sim::sim_config config;
            config.power_aware_allocation = aware;
            config.power_adaptation = adapt;
            config.rounds = rounds;
            config.seed = 7;
            config.zero_padding = 4;
            ns::sim::network_simulator sim(dep, config);
            const auto result = sim.run();
            table.add_row({aware ? "on" : "off", adapt ? "on" : "off",
                           ns::util::format_double(result.delivery_rate(), 3),
                           ns::util::format_double(result.ber(), 4)});
        }
    }
    table.print(std::cout);
    std::cout << "\nexpected: both defenses on performs best; power-agnostic "
                 "allocation parks weak devices inside strong devices' side "
                 "lobes and loses packets (§3.2.3, Fig. 8)\n";
    return 0;
}
