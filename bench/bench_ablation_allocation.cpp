// Ablation — the two near-far defenses of §3.2.3:
//   (a) coarse-grained power-aware cyclic-shift assignment, and
//   (b) fine-grained self-aware power adjustment,
// each toggled independently on the same 128-device office deployment.
//
// The four toggle combinations are independent simulations, dispatched
// as one batch on the engine's Monte-Carlo runner.
#include <iostream>

#include "netscatter/engine/mc_runner.hpp"
#include "netscatter/sim/deployment.hpp"
#include "netscatter/sim/network_sim.hpp"
#include "netscatter/util/table.hpp"
#include "bench_report.hpp"

int main() {
    const bench::stopwatch clock;
    const std::size_t devices = 128, rounds = 3;

    ns::util::text_table table(
        "Ablation: near-far defenses (128 devices)",
        {"power-aware allocation", "power adaptation", "delivery rate", "BER"});

    struct setting {
        bool aware;
        bool adapt;
    };
    std::vector<setting> settings;
    std::vector<ns::engine::mc_job> jobs;
    for (const bool aware : {true, false}) {
        for (const bool adapt : {true, false}) {
            settings.push_back({aware, adapt});
            ns::engine::mc_job job;
            job.dep_params = ns::sim::deployment_params{};
            job.num_devices = devices;
            job.deployment_seed = 23;
            job.config.power_aware_allocation = aware;
            job.config.power_adaptation = adapt;
            job.config.rounds = rounds;
            job.config.seed = 7;
            job.config.zero_padding = 4;
            jobs.push_back(job);
        }
    }
    const ns::engine::mc_runner runner;
    const auto results = runner.run_batch(jobs).results;

    bench::bench_report report("ablation_allocation");
    for (std::size_t i = 0; i < settings.size(); ++i) {
        const auto& result = results[i];
        table.add_row({settings[i].aware ? "on" : "off",
                       settings[i].adapt ? "on" : "off",
                       ns::util::format_double(result.delivery_rate(), 3),
                       ns::util::format_double(result.ber(), 4)});
        report.add_point({{"power_aware_allocation", settings[i].aware ? 1.0 : 0.0},
                          {"power_adaptation", settings[i].adapt ? 1.0 : 0.0},
                          {"delivery_rate", result.delivery_rate()},
                          {"ber", result.ber()}});
    }
    table.print(std::cout);
    std::cout << "\nexpected: both defenses on performs best; power-agnostic "
                 "allocation parks weak devices inside strong devices' side "
                 "lobes and loses packets (§3.2.3, Fig. 8)\n";
    report.set_scalar("wall_clock_s", clock.seconds());
    report.write();
    return 0;
}
