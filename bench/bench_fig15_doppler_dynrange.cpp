// Fig. 15 — (a) Doppler effect on ΔFFTbin at walking speeds, and
// (b) power dynamic range: the maximum power difference two concurrent
// devices tolerate as a function of their FFT-bin separation.
//
// Paper shape: (a) Doppler at <=5 m/s is far below one bin and
// indistinguishable from static; (b) tolerance grows from ~5 dB at
// 2 bins to a ~35 dB plateau mid-band, symmetric around bin 256.
#include <cmath>
#include <iostream>
#include <span>
#include <vector>

#include "netscatter/channel/awgn.hpp"
#include "netscatter/channel/impairments.hpp"
#include "netscatter/channel/superposition.hpp"
#include "netscatter/dsp/vector_ops.hpp"
#include "netscatter/mac/allocator.hpp"
#include "netscatter/phy/frame.hpp"
#include "netscatter/phy/modulator.hpp"
#include "netscatter/rx/receiver.hpp"
#include "netscatter/util/rng.hpp"
#include "netscatter/util/stats.hpp"
#include "netscatter/util/table.hpp"

namespace {

// True when the weak device delivers >= 9/10 packets at the given
// separation and power offset (PER < ~10%; the paper uses PER < 1% with
// many more trials — this keeps the bench fast while preserving shape).
bool weak_device_survives(std::uint32_t separation, double strong_snr_db,
                          double difference_db, ns::util::rng& rng) {
    ns::rx::receiver_params rxp;
    rxp.phy = ns::phy::deployed_params();
    rxp.frame = ns::phy::linklayer_format();
    rxp.zero_padding_factor = 4;
    ns::rx::receiver rx(rxp);
    const std::uint32_t weak_shift = separation % 512;
    rx.set_registered_shifts({0, weak_shift});

    int delivered = 0;
    const int trials = 10;
    for (int t = 0; t < trials; ++t) {
        std::vector<ns::channel::tx_contribution> txs;
        std::vector<ns::dsp::cvec> waveforms;
        std::vector<bool> weak_bits;
        for (int device = 0; device < 2; ++device) {
            const auto payload = rng.bits(rxp.frame.payload_bits);
            const auto bits = ns::phy::build_frame_bits(rxp.frame, payload);
            if (device == 1) weak_bits = bits;
            ns::phy::distributed_modulator mod(rxp.phy, device == 0 ? 0 : weak_shift);
            ns::channel::tx_contribution tx;
            waveforms.push_back(mod.modulate_packet(bits));
            tx.waveform = std::span<const ns::dsp::cplx>(waveforms.back());
            tx.snr_db = device == 0 ? strong_snr_db : strong_snr_db - difference_db;
            tx.timing_offset_s = rng.uniform(-0.5e-6, 0.5e-6);
            txs.push_back(std::move(tx));
        }
        const std::size_t samples =
            (rxp.frame.preamble_symbols + rxp.frame.payload_plus_crc_bits()) *
            rxp.phy.samples_per_symbol();
        ns::channel::channel_config config;
        ns::channel::channel_workspace chan_ws;
        const ns::dsp::cvec stream = ns::channel::combine(
            std::span<const ns::channel::tx_contribution>(txs), samples, rxp.phy,
            config, rng, chan_ws);
        const auto result = rx.decode(stream, 0);
        if (result.reports[1].crc_ok && result.reports[1].bits == weak_bits) ++delivered;
    }
    return delivered >= 9;
}

}  // namespace

int main() {
    ns::util::rng rng(15);
    const ns::phy::css_params phy = ns::phy::deployed_params();

    // --- (a) Doppler ----------------------------------------------------
    ns::util::text_table doppler("Fig 15a: 1-CDF of DeltaFFTbin under mobility",
                                 {"DeltaFFTbin", "static", "1 m/s", "3 m/s", "5 m/s"});
    std::vector<std::vector<double>> samples(4);
    const double speeds[4] = {0.0, 1.0, 3.0, 5.0};
    const ns::channel::hardware_delay_model delay{};
    for (int s = 0; s < 4; ++s) {
        for (int p = 0; p < 20000; ++p) {
            const double dt = delay.sample_s(rng) - delay.mean_us * 1e-6;
            const double df = ns::channel::sample_doppler_hz(speeds[s], 900e6, rng);
            samples[static_cast<std::size_t>(s)].push_back(
                std::abs(phy.bins_from_time_offset(dt) +
                         phy.bins_from_frequency_offset(df)));
        }
    }
    for (double x : {0.0, 0.25, 0.5, 0.75, 1.0, 1.25, 1.5}) {
        std::vector<std::string> row{ns::util::format_double(x, 2)};
        for (int s = 0; s < 4; ++s) {
            row.push_back(ns::util::format_double(
                ns::util::ccdf_at(samples[static_cast<std::size_t>(s)], x), 4));
        }
        doppler.add_row(row);
    }
    doppler.print(std::cout);
    std::cout << "paper shape: all four speed curves overlap — Doppler (30 Hz at "
                 "10 m/s) is negligible vs the ~1 kHz bin\n\n";

    // --- (b) power dynamic range -----------------------------------------
    ns::util::text_table dynrange(
        "Fig 15b: max tolerable power difference vs FFT-bin separation",
        {"separation [bins]", "measured [dB]", "model [dB]"});
    const double strong_snr = 20.0;
    for (std::uint32_t separation : {2u, 4u, 8u, 16u, 32u, 64u, 128u, 256u, 384u,
                                     448u, 480u, 496u, 504u, 508u, 510u}) {
        // Coarse 5 dB search for the largest surviving difference.
        double tolerated = 0.0;
        for (double diff = 5.0; diff <= 45.0; diff += 5.0) {
            if (weak_device_survives(separation, strong_snr, diff, rng)) {
                tolerated = diff;
            } else {
                break;
            }
        }
        dynrange.add_row(
            {std::to_string(separation), ns::util::format_double(tolerated, 0),
             ns::util::format_double(
                 ns::mac::tolerable_power_difference_db(phy, std::min(separation,
                                                                      512 - separation)),
                 1)});
    }
    dynrange.print(std::cout);
    std::cout << "\npaper shape: ~5 dB at 2 bins rising to a ~35 dB plateau "
                 "mid-band, symmetric around bin 256 (aliasing)\n";
    return 0;
}
