// Fig. 16 — spectrum of the backscattered signal at the three hardware
// power levels (0 / -4 / -10 dB). The paper's spectrograms show a clean
// chirp band whose level steps down with the selected gain and no visible
// nonlinearities.
//
// We synthesize a chirp stream through the impedance-network gain model,
// compute the Welch-averaged PSD, and report in-band level and
// out-of-band rejection per power setting.
#include <algorithm>
#include <cmath>
#include <iostream>

#include "netscatter/device/impedance.hpp"
#include "netscatter/dsp/spectrogram.hpp"
#include "netscatter/dsp/vector_ops.hpp"
#include "netscatter/phy/chirp.hpp"
#include "netscatter/phy/modulator.hpp"
#include "netscatter/util/rng.hpp"
#include "netscatter/util/table.hpp"

int main() {
    const ns::phy::css_params phy = ns::phy::deployed_params();
    const ns::device::switch_network network;
    ns::util::rng rng(16);

    ns::util::text_table table(
        "Fig 16: backscattered spectrum vs power level (Welch PSD)",
        {"level", "gain [dB]", "in-band PSD rel. max [dB]", "band edges clean"});

    double reference_db = 0.0;
    // One payload reused across levels so only the gain differs.
    const std::vector<bool> payload = rng.bits(24);
    for (std::size_t level = 0; level < network.num_levels(); ++level) {
        ns::phy::distributed_modulator mod(phy, 37);
        ns::dsp::cvec stream = mod.modulate_payload(payload);
        const double amplitude = std::pow(10.0, network.gain_db(level) / 20.0);
        ns::dsp::scale(stream, ns::dsp::cplx{amplitude, 0.0});

        ns::dsp::stft_params stft;
        stft.window_size = 256;
        stft.hop = 128;
        const auto psd = ns::dsp::average_psd_db(stream, stft);

        // In-band: average over the middle 80% of bins; the chirp sweeps
        // the full band so energy is spread evenly.
        double in_band = 0.0;
        std::size_t count = 0;
        for (std::size_t b = 26; b < 230; ++b) {
            in_band += std::pow(10.0, psd[b] / 10.0);
            ++count;
        }
        const double in_band_db = 10.0 * std::log10(in_band / static_cast<double>(count));
        if (level == 0) reference_db = in_band_db;

        // Clean spectrum check: PSD variation across the band stays small
        // (no spurs / harmonics from the gain model).
        double max_bin = -1e9, min_bin = 1e9;
        for (std::size_t b = 26; b < 230; ++b) {
            max_bin = std::max(max_bin, psd[b]);
            min_bin = std::min(min_bin, psd[b]);
        }
        table.add_row({std::to_string(level),
                       ns::util::format_double(network.gain_db(level), 0),
                       ns::util::format_double(in_band_db - reference_db, 1),
                       (max_bin - min_bin) < 6.0 ? "yes" : "NO"});
    }
    table.print(std::cout);
    std::cout << "\npaper shape: three clean chirp spectra stepped 0 / -4 / -10 dB\n";
    return 0;
}
