// Ablation — bandwidth aggregation (§3.1, Fig. 5).
//
// Doubling the total band while keeping per-device BW and SF doubles the
// device capacity at the same per-device bitrate, and the receiver still
// needs only ONE (2 * 2^SF)-point FFT instead of two band filters + two
// FFTs. We verify correctness (all devices across both sub-bands decode
// from one FFT) and compare the single-FFT demodulation cost against the
// two-filter alternative.
#include <chrono>
#include <iostream>

#include "netscatter/channel/awgn.hpp"
#include "netscatter/dsp/vector_ops.hpp"
#include "netscatter/phy/aggregation.hpp"
#include "netscatter/phy/demodulator.hpp"
#include "netscatter/util/rng.hpp"
#include "netscatter/util/table.hpp"

int main() {
    ns::phy::aggregate_params agg;
    agg.chirp = ns::phy::deployed_params();
    agg.num_bands = 2;
    ns::util::rng rng(25);

    // 16 devices spread over both sub-bands, ON with random bits.
    std::vector<std::pair<std::size_t, std::uint32_t>> devices;
    for (std::uint32_t i = 0; i < 16; ++i) {
        devices.emplace_back(i % 2, (i / 2) * 64 + 3);
    }

    const int symbols = 50;
    int correct = 0, total = 0;
    for (int s = 0; s < symbols; ++s) {
        std::vector<bool> bits(devices.size());
        ns::dsp::cvec rx(agg.samples_per_symbol(), ns::dsp::cplx{0.0, 0.0});
        for (std::size_t d = 0; d < devices.size(); ++d) {
            bits[d] = rng.bernoulli(0.5);
            if (!bits[d]) continue;
            ns::dsp::cvec chirp = ns::phy::make_aggregate_upchirp(
                agg, devices[d].first, static_cast<double>(devices[d].second));
            ns::dsp::scale(chirp, std::polar(1.0, rng.uniform(0.0, 6.2831)));
            ns::dsp::accumulate(rx, chirp);
        }
        ns::channel::add_noise(rx, 1.0, rng);  // 0 dB per-device SNR

        const auto power = ns::phy::aggregate_symbol_power_spectrum(agg, rx);
        // Genie threshold at half the clean peak power.
        const double n = static_cast<double>(agg.samples_per_symbol());
        const double threshold = 0.5 * n * n;
        for (std::size_t d = 0; d < devices.size(); ++d) {
            const bool decided =
                power[agg.bin_of(devices[d].first, devices[d].second)] > threshold;
            if (decided == bits[d]) ++correct;
            ++total;
        }
    }

    ns::util::text_table table("Bandwidth aggregation (2 x 500 kHz, SF 9)",
                               {"metric", "value"});
    table.add_row({"aggregate capacity [bins]", std::to_string(agg.total_bins())});
    table.add_row({"per-device bitrate [bps]",
                   ns::util::format_double(agg.chirp.onoff_bitrate_bps(), 0)});
    table.add_row({"OOK decisions correct",
                   ns::util::format_double(100.0 * correct / total, 2) + " %"});

    // Complexity comparison (§3.1): the alternative to the aggregate
    // single FFT is to band-split the 2BW capture with two decimating
    // filters and run two 2^SF FFTs. The filters dominate: a 64-tap FIR
    // over 1024 samples per band is ~131k complex MACs per symbol.
    const int reps = 1000;
    ns::dsp::cvec agg_symbol = ns::phy::make_aggregate_upchirp(agg, 0, 5.0);
    const auto t0 = std::chrono::steady_clock::now();
    for (int r = 0; r < reps; ++r) {
        volatile auto sink =
            ns::phy::aggregate_symbol_power_spectrum(agg, agg_symbol).front();
        (void)sink;
    }
    const auto t1 = std::chrono::steady_clock::now();

    // Two-band alternative: 64-tap complex FIR + decimate-by-2 per band,
    // then a 512-pt dechirp+FFT per band.
    const ns::phy::demodulator sub(agg.chirp, 1);
    constexpr int fir_taps = 64;
    std::vector<ns::dsp::cplx> taps(fir_taps, ns::dsp::cplx{1.0 / fir_taps, 0.0});
    const auto t2 = std::chrono::steady_clock::now();
    for (int r = 0; r < reps; ++r) {
        for (int band = 0; band < 2; ++band) {
            ns::dsp::cvec filtered(agg_symbol.size() / 2);
            for (std::size_t i = 0; i < filtered.size(); ++i) {
                ns::dsp::cplx acc{0.0, 0.0};
                const std::size_t base = 2 * i;
                for (int t = 0; t < fir_taps; ++t) {
                    const std::size_t idx = base >= static_cast<std::size_t>(t)
                                                ? base - static_cast<std::size_t>(t)
                                                : 0;
                    acc += taps[static_cast<std::size_t>(t)] * agg_symbol[idx];
                }
                filtered[i] = acc;
            }
            volatile auto sink = sub.symbol_power_spectrum(filtered).front();
            (void)sink;
        }
    }
    const auto t3 = std::chrono::steady_clock::now();
    const double one_fft_us =
        std::chrono::duration<double, std::micro>(t1 - t0).count() / reps;
    const double two_band_us =
        std::chrono::duration<double, std::micro>(t3 - t2).count() / reps;
    table.add_row({"aggregate demod: one 1024-pt FFT [us/symbol]",
                   ns::util::format_double(one_fft_us, 1)});
    table.add_row({"two-band demod: 2x(64-tap FIR + 512-pt FFT) [us/symbol]",
                   ns::util::format_double(two_band_us, 1)});
    table.print(std::cout);
    std::cout << "\nSS3.1: the aggregate-band method needs no per-band filters and "
                 "one FFT — lower total complexity than band-splitting\n";
    return 0;
}
