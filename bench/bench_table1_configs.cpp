// Table 1 — NetScatter modulation configurations: maximum tolerable
// time/frequency mismatch, per-device bitrate and sensitivity for the six
// (BW, SF) pairs the paper lists.
//
// Paper reference rows (BW kHz, SF, time, freq, bitrate, sensitivity):
//   500 9 2us  976Hz  976bps  -123dBm    500 8 2us 1953Hz 1953bps -120dBm
//   250 8 4us  976Hz  976bps  -123dBm    250 7 4us 1953Hz 1953bps -120dBm
//   125 7 8us  976Hz  976bps  -123dBm    125 6 8us 1953Hz 1953bps -118dBm
#include <iostream>

#include "netscatter/phy/css_params.hpp"
#include "netscatter/util/table.hpp"

int main() {
    ns::util::text_table table(
        "Table 1: NetScatter modulation configurations (tolerances = 1 FFT bin)",
        {"BW [kHz]", "SF", "time var [us]", "freq var [Hz]", "bitrate [bps]",
         "sensitivity [dBm]"});

    for (const auto& config : ns::phy::table1_configs()) {
        table.add_row({ns::util::format_double(config.params.bandwidth_hz / 1e3, 0),
                       std::to_string(config.params.spreading_factor),
                       ns::util::format_double(config.max_time_variation_s * 1e6, 1),
                       ns::util::format_double(config.max_frequency_variation_hz, 0),
                       ns::util::format_double(config.bitrate_bps, 0),
                       ns::util::format_double(config.sensitivity_dbm, 1)});
    }
    table.print(std::cout);

    std::cout << "\npaper values: time 2/2/4/4/8/8 us, freq 976/1953/976/1953/976/1953 "
                 "Hz,\n              bitrate 976/1953/976/1953/976/1953 bps, "
                 "sensitivity -123/-120/-123/-120/-123/-118 dBm\n"
                 "(our SF 6 row is ~4 dB more conservative than the paper's "
                 "-118 dBm; see EXPERIMENTS.md)\n";
    return 0;
}
