// Roofline microbench (ROADMAP item 1 evidence).
//
// Two measurements, written to BENCH_roofline.json:
//  1. The machine's memory-bandwidth ceiling: a STREAM-style triad
//     (a[i] = b[i] + s*c[i], 24 bytes/element) over arrays far larger
//     than the last-level cache, best pass of several.
//  2. The symbol-domain hot loop — combine_symbol_domain's Dirichlet
//     kernel accumulation — at several device counts and kernel radii.
//     Traffic and work come from the analytic model (obs/roofline.hpp:
//     48 bytes and 8 flops per accumulated window element, counted
//     deterministically by phy.kernel_window_elems); time comes from
//     the phy.kernel_sum_s probe, so the reported GB/s covers exactly
//     the accumulation loop, not noise synthesis. Each point reports
//     achieved GB/s, GFLOP/s and % of the triad ceiling — the numbers
//     a SIMD/SoA PR must move. Where perf_event_open is permitted,
//     per-point IPC and LLC miss rate ride along; where it is not, the
//     bench degrades to the analytic + wall-clock view.
//
// % of peak can exceed 100 at small device counts: the per-symbol
// accumulators fit in cache, and the triad ceiling is DRAM bandwidth.
// The interesting regime is large populations, where the spectra walk
// out of cache and the loop pins to the memory roof.
#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "bench_report.hpp"
#include "netscatter/channel/superposition.hpp"
#include "netscatter/obs/metrics.hpp"
#include "netscatter/obs/perf_counters.hpp"
#include "netscatter/obs/roofline.hpp"
#include "netscatter/phy/css_params.hpp"
#include "netscatter/util/rng.hpp"
#include "netscatter/util/table.hpp"

namespace {

// STREAM triad bandwidth in GB/s: 2 reads + 1 write of a double per
// element, best pass wins (the standard STREAM convention).
double measure_triad_gbps(std::size_t elems, std::size_t passes) {
    std::vector<double> a(elems, 0.0);
    std::vector<double> b(elems, 1.5);
    std::vector<double> c(elems, 2.5);
    const double scalar = 3.0;
    double best_gbps = 0.0;
    for (std::size_t pass = 0; pass < passes + 1; ++pass) {
        const bench::stopwatch clock;
        for (std::size_t i = 0; i < elems; ++i) {
            a[i] = b[i] + scalar * c[i];
        }
        const double seconds = clock.seconds();
        // Feed the result back so no pass can be dead-code eliminated.
        b[pass % elems] += a[(pass + elems / 2) % elems] * 1e-9;
        if (pass == 0) continue;  // warm-up pass (page faults)
        if (seconds > 0.0) {
            const double gbps =
                24.0 * static_cast<double>(elems) / seconds * 1e-9;
            best_gbps = std::max(best_gbps, gbps);
        }
    }
    if (a[0] > 1e30) std::cout << a[0];  // defeat dead-code elimination
    return best_gbps;
}

struct kernel_point {
    std::size_t devices = 0;
    std::size_t radius_bins = 0;
    std::size_t iters = 0;
    std::uint64_t window_elems = 0;
    double seconds = 0.0;
    double gbps = 0.0;
    double gflops = 0.0;
    double ipc = 0.0;
    double llc_miss_rate = 0.0;
};

// One sweep point: repeated combine_symbol_domain calls on a synthetic
// population, measured through the same phy.kernel_window_elems /
// phy.kernel_sum_s probes every scenario run carries — the bench and
// the simulator report the identical quantity.
kernel_point run_kernel_point(std::size_t devices, std::size_t radius_bins,
                              double min_seconds,
                              ns::obs::perf_counter_group* perf) {
    const auto phy = ns::phy::deployed_params();
    ns::channel::channel_config chan;
    chan.noise_power = 1.0;
    ns::channel::symbol_domain_params sd;
    sd.zero_padding = 4;
    sd.kernel_radius_bins = radius_bins;

    ns::util::rng rng(42);
    std::vector<std::vector<std::uint8_t>> bits(devices);
    std::vector<ns::channel::packet_contribution> packets(devices);
    const std::size_t stride =
        std::max<std::size_t>(1, phy.num_bins() / std::max<std::size_t>(devices, 1));
    for (std::size_t d = 0; d < devices; ++d) {
        bits[d].resize(sd.payload_symbols);
        for (auto& bit : bits[d]) {
            bit = static_cast<std::uint8_t>(rng() & 1);
        }
        auto& packet = packets[d];
        packet.cyclic_shift =
            static_cast<std::uint32_t>(d * stride % phy.num_bins());
        packet.frame_bits = bits[d];
        packet.snr_db = 12.0;
        packet.frequency_offset_hz = rng.uniform(-50.0, 50.0);
    }

    ns::obs::metrics_registry registry;
    ns::channel::channel_workspace workspace;
    if (perf != nullptr && perf->available()) {
        workspace.obs = ns::obs::obs_sink::wire(&registry, perf);
    } else {
        workspace.obs.metrics = &registry;
    }

    // Warm the workspace (spectra/kernel capacity growth) off the clock.
    ns::channel::combine_symbol_domain(packets, phy, chan, sd, rng, workspace);
    const ns::obs::metrics_snapshot base = registry.snapshot();

    kernel_point point;
    point.devices = devices;
    point.radius_bins = radius_bins;
    const bench::stopwatch clock;
    do {
        ns::channel::combine_symbol_domain(packets, phy, chan, sd, rng,
                                           workspace);
        ++point.iters;
    } while (clock.seconds() < min_seconds);

    const ns::obs::metrics_snapshot snap = registry.snapshot();
    point.window_elems = snap.counter_value("phy.kernel_window_elems") -
                         base.counter_value("phy.kernel_window_elems");
    point.seconds = snap.histogram_sum("phy.kernel_sum_s") -
                    base.histogram_sum("phy.kernel_sum_s");
    ns::obs::kernel_loop_model model;
    model.window_elems = point.window_elems;
    point.gbps = model.achieved_gbps(point.seconds);
    point.gflops = model.achieved_gflops(point.seconds);
    const std::uint64_t cycles =
        snap.counter_value("perf.kernel_sum.cycles") -
        base.counter_value("perf.kernel_sum.cycles");
    const std::uint64_t instructions =
        snap.counter_value("perf.kernel_sum.instructions") -
        base.counter_value("perf.kernel_sum.instructions");
    point.ipc = ns::obs::perf_ipc(instructions, cycles);
    point.llc_miss_rate = ns::obs::perf_miss_rate(
        snap.counter_value("perf.kernel_sum.llc_misses") -
            base.counter_value("perf.kernel_sum.llc_misses"),
        snap.counter_value("perf.kernel_sum.llc_loads") -
            base.counter_value("perf.kernel_sum.llc_loads"));
    return point;
}

}  // namespace

int main() {
    const bool quick = std::getenv("NS_BENCH_QUICK") != nullptr;
    bench::bench_report report("roofline");
    const bench::stopwatch clock;

    if (!ns::obs::compiled_in()) {
        std::cout << "NS_OBS=OFF: the kernel-loop probes are compiled out; "
                     "only the triad ceiling is meaningful in this build\n";
    }

    // --- 1. Memory-bandwidth ceiling (STREAM triad) ---------------------
    const std::size_t triad_elems = quick ? (1u << 20) : (1u << 22);
    const std::size_t triad_passes = quick ? 3 : 7;
    const double triad_gbps = measure_triad_gbps(triad_elems, triad_passes);
    std::cout << "STREAM triad ceiling: "
              << ns::util::format_double(triad_gbps, 2) << " GB/s ("
              << triad_elems << " doubles/array, best of " << triad_passes
              << ")\n";
    report.set_scalar("triad_gbps", triad_gbps);
    report.set_scalar("triad_elems", static_cast<double>(triad_elems));
    report.set_scalar("triad_bytes_per_elem", 24.0);

    // --- 2. Kernel-accumulation loop vs the ceiling ---------------------
    ns::obs::perf_counter_group perf;
    const bool perf_open = perf.open();
    report.set_scalar("perf_available", perf_open ? 1.0 : 0.0);
    if (!perf_open) {
        std::cout << "perf counters unavailable (perf_event_open denied or "
                     "NS_PERF_DISABLE); IPC columns report 0\n";
    }

    const ns::obs::kernel_loop_model traffic_model;
    report.set_scalar("kernel_bytes_per_elem",
                      ns::obs::kernel_loop_model::bytes_per_elem);
    report.set_scalar("kernel_flops_per_elem",
                      ns::obs::kernel_loop_model::flops_per_elem);
    report.set_scalar("arithmetic_intensity",
                      traffic_model.arithmetic_intensity());

    ns::util::text_table table(
        "Dirichlet kernel accumulation vs memory roof",
        {"devices", "radius", "GB/s", "GFLOP/s", "% of peak", "IPC",
         "LLC miss"});
    const double min_seconds = quick ? 0.05 : 0.25;
    const std::vector<std::size_t> device_sweep =
        quick ? std::vector<std::size_t>{64, 256}
              : std::vector<std::size_t>{64, 256, 1024};
    const std::vector<std::size_t> radius_sweep =
        quick ? std::vector<std::size_t>{16}
              : std::vector<std::size_t>{4, 16, 64};
    for (const std::size_t devices : device_sweep) {
        for (const std::size_t radius : radius_sweep) {
            const kernel_point point =
                run_kernel_point(devices, radius, min_seconds, &perf);
            const double pct = triad_gbps > 0.0
                                   ? 100.0 * point.gbps / triad_gbps
                                   : 0.0;
            table.add_row(
                {std::to_string(devices), std::to_string(radius),
                 ns::util::format_double(point.gbps, 2),
                 ns::util::format_double(point.gflops, 2),
                 ns::util::format_double(pct, 1) + " %",
                 ns::util::format_double(point.ipc, 2),
                 ns::util::format_double(100.0 * point.llc_miss_rate, 1) +
                     " %"});
            report.add_point(
                {{"devices", static_cast<double>(devices)},
                 {"kernel_radius_bins", static_cast<double>(radius)},
                 {"iters", static_cast<double>(point.iters)},
                 {"window_elems", static_cast<double>(point.window_elems)},
                 {"kernel_sum_wall_s", point.seconds},
                 {"gbps", point.gbps},
                 {"gflops", point.gflops},
                 {"pct_of_peak", pct},
                 {"ipc", point.ipc},
                 {"llc_miss_rate", point.llc_miss_rate}});
        }
    }
    table.print(std::cout);
    std::cout << "\n(traffic model: 48 B + 8 flops per accumulated window "
                 "element — see src/netscatter/obs/roofline.hpp; ceiling = "
                 "STREAM triad)\n";

    report.set_scalar("wall_clock_s", clock.seconds());
    report.write();
    return 0;
}
