// Ablation — signal-strength grouping (§3.3.3).
//
// A population whose near-far spread exceeds the decoder's ~35 dB
// dynamic range (Fig. 15b) cannot be served in one concurrent round: the
// strongest devices' side lobes bury the weakest. The AP's answer is to
// group devices by signal strength and address one group per query.
// This bench stretches the office deployment well past the dynamic range
// and sweeps the per-group range limit: delivery recovers at the cost of
// one extra round of latency per group. All three points run through the
// scenario engine's grouped path (scenario_runner -> network_simulator
// grouping) — the same code path the grouped scenarios use — so grouped
// numbers come from one place.
#include <iostream>

#include "bench_report.hpp"
#include "netscatter/scenario/scenario_runner.hpp"
#include "netscatter/sim/deployment.hpp"
#include "netscatter/util/table.hpp"

int main() {
    // Stretch the deployment: closer minimum distance and a steeper
    // exponent widen the uplink spread to ~50+ dB.
    ns::scenario::scenario_spec base;
    base.name = "ablation-grouping";
    base.description = "stretched office floor past the dynamic range";
    base.geometry.preset = ns::scenario::geometry_preset::office;
    base.geometry.num_devices = 192;
    base.geometry.min_distance_m = 3.0;
    base.geometry.pathloss_exponent = 2.9;
    base.geometry.wall_loss_db = 4.0;
    base.sim.rounds = 2;
    base.sim.seed = 41;
    base.sim.zero_padding = 4;
    base.replicas = 1;

    {
        const ns::sim::deployment dep(ns::scenario::resolve_geometry(base.geometry),
                                      base.geometry.num_devices, base.sim.seed);
        double min_snr = 1e9, max_snr = -1e9;
        for (const auto& device : dep.devices()) {
            min_snr = std::min(min_snr, device.uplink_snr_db);
            max_snr = std::max(max_snr, device.uplink_snr_db);
        }
        std::cout << "stretched deployment: " << base.geometry.num_devices
                  << " devices, uplink SNR " << ns::util::format_double(min_snr, 1)
                  << " .. " << ns::util::format_double(max_snr, 1) << " dB (spread "
                  << ns::util::format_double(max_snr - min_snr, 1) << " dB)\n\n";
    }

    bench::bench_report report("ablation_grouping");
    bench::stopwatch clock;

    ns::util::text_table table(
        "Ablation: grouping by signal strength (SS3.3.3)",
        {"scheme", "groups", "delivery rate", "latency [ms]", "link rate [kbps]"});

    for (const double range_db : {200.0, 35.0, 20.0}) {
        ns::scenario::scenario_spec spec = base;
        spec.sim.grouping.enabled = true;
        spec.sim.grouping.group_capacity = 256;
        spec.sim.grouping.max_dynamic_range_db = range_db;
        // Each group must be scheduled the same number of rounds for a
        // fair delivery comparison: one full schedule per group count.
        // A short probe reads the partition size; single-group points
        // reuse it directly (same spec, same rounds).
        auto result = ns::scenario::run_scenario(spec, {.parallel = false});
        if (result.num_groups > 1) {
            spec.sim.rounds = base.sim.rounds * result.num_groups;
            result = ns::scenario::run_scenario(spec, {.parallel = false});
        }

        const double latency_ms = result.network_latency_s() * 1e3;
        const double rate_kbps = result.throughput_bps() / 1e3;
        table.add_row({range_db > 100 ? "ungrouped (one round)"
                                      : "grouped @ " +
                                            ns::util::format_double(range_db, 0) + " dB",
                       std::to_string(result.num_groups),
                       ns::util::format_double(result.sim.delivery_rate(), 3),
                       ns::util::format_double(latency_ms, 1),
                       ns::util::format_double(rate_kbps, 1)});
        report.add_point({{"max_dynamic_range_db", range_db},
                          {"num_groups", static_cast<double>(result.num_groups)},
                          {"delivery_rate", result.sim.delivery_rate()},
                          {"network_latency_ms", latency_ms},
                          {"linklayer_rate_kbps", rate_kbps}});
    }
    table.print(std::cout);
    std::cout << "\nexpected: the ungrouped round loses the weak half of the "
                 "population to the near-far problem; grouping restores delivery "
                 "at ~(number of groups)x the latency\n";
    report.set_scalar("wall_clock_s", clock.seconds());
    report.write();
    return 0;
}
