// Ablation — signal-strength grouping (§3.3.3).
//
// A population whose near-far spread exceeds the decoder's ~35 dB
// dynamic range (Fig. 15b) cannot be served in one concurrent round: the
// strongest devices' side lobes bury the weakest. The AP's answer is to
// group devices by signal strength and address one group per query.
// This bench stretches the office deployment well past the dynamic range
// and compares one-shot concurrency against 2-way grouping: delivery
// recovers at the cost of one extra round of latency per group.
#include <iostream>

#include "netscatter/sim/grouped_sim.hpp"
#include "netscatter/util/table.hpp"

int main() {
    // Stretch the deployment: closer minimum distance and a steeper
    // exponent widen the uplink spread to ~50+ dB.
    ns::sim::deployment_params dep_params;
    dep_params.min_distance_m = 3.0;
    dep_params.pathloss.exponent = 2.9;
    dep_params.pathloss.wall_loss_db = 4.0;
    const std::size_t devices = 192;
    const ns::sim::deployment dep(dep_params, devices, 41);

    double min_snr = 1e9, max_snr = -1e9;
    for (const auto& device : dep.devices()) {
        min_snr = std::min(min_snr, device.uplink_snr_db);
        max_snr = std::max(max_snr, device.uplink_snr_db);
    }
    std::cout << "stretched deployment: " << devices << " devices, uplink SNR "
              << ns::util::format_double(min_snr, 1) << " .. "
              << ns::util::format_double(max_snr, 1) << " dB (spread "
              << ns::util::format_double(max_snr - min_snr, 1) << " dB)\n\n";

    ns::sim::sim_config config;
    config.rounds = 2;
    config.seed = 11;
    config.zero_padding = 4;
    const auto frame = config.frame;
    const auto phy = config.phy;

    ns::util::text_table table(
        "Ablation: grouping by signal strength (SS3.3.3)",
        {"scheme", "groups", "delivery rate", "latency [ms]", "link rate [kbps]"});

    for (const double range_db : {200.0, 35.0, 20.0}) {
        const auto grouped = ns::sim::run_grouped(
            dep, config, {.group_capacity = 256, .max_dynamic_range_db = range_db});
        const double latency_ms =
            grouped.network_latency_s(frame, phy, ns::sim::query_config::config1) * 1e3;
        const double rate_kbps =
            grouped.linklayer_rate_bps(frame, phy, ns::sim::query_config::config1) / 1e3;
        table.add_row({range_db > 100 ? "ungrouped (one round)"
                                      : "grouped @ " + ns::util::format_double(range_db, 0) +
                                            " dB",
                       std::to_string(grouped.groups.size()),
                       ns::util::format_double(grouped.delivery_rate(), 3),
                       ns::util::format_double(latency_ms, 1),
                       ns::util::format_double(rate_kbps, 1)});
    }
    table.print(std::cout);
    std::cout << "\nexpected: the ungrouped round loses the weak half of the "
                 "population to the near-far problem; grouping restores delivery "
                 "at ~(number of groups)x the latency\n";
    return 0;
}
