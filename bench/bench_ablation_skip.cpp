// Ablation — the SKIP guard bins (§3.2.1), evaluated at FULL capacity.
//
// SKIP trades concurrency for jitter margin: SKIP=1 packs 512 devices at
// 1-bin spacing but hardware delay jitter (up to 3.5 us ~ 1.75 bins at
// 500 kHz) makes neighbours bleed into each other; SKIP=2 — the deployed
// point — carries 256 devices with a full guard bin; SKIP=4 is safer
// still but halves capacity again. The interesting quantity is the
// aggregate GOODPUT = capacity x delivery x 976 bps, which SKIP=2
// maximizes under realistic jitter.
#include <iostream>

#include "netscatter/sim/deployment.hpp"
#include "netscatter/sim/network_sim.hpp"
#include "netscatter/util/table.hpp"

int main() {
    ns::util::text_table table(
        "Ablation: SKIP at full capacity (jitter up to 3.5 us, 2 rounds)",
        {"SKIP", "jitter", "devices", "delivery rate", "BER", "goodput [kbps]"});

    struct setting {
        std::uint32_t skip;
        bool jitter;
    };
    for (const setting s : {setting{1, true}, setting{2, true}, setting{4, true},
                            setting{1, false}, setting{2, false}}) {
        const std::size_t devices = 512 / s.skip;
        const ns::sim::deployment dep(ns::sim::deployment_params{}, devices, 21);
        ns::sim::sim_config config;
        config.skip = s.skip;
        config.model_timing_jitter = s.jitter;
        config.rounds = 2;
        config.seed = 5;
        config.zero_padding = 4;
        ns::sim::network_simulator sim(dep, config);
        const auto result = sim.run();
        const double goodput_kbps =
            result.delivery_rate() * static_cast<double>(devices) * 976.5625 / 1e3;
        table.add_row({std::to_string(s.skip), s.jitter ? "on" : "off",
                       std::to_string(devices),
                       ns::util::format_double(result.delivery_rate(), 3),
                       ns::util::format_double(result.ber(), 4),
                       ns::util::format_double(goodput_kbps, 1)});
    }
    table.print(std::cout);
    std::cout << "\nexpected: with jitter on, SKIP=1 collapses (no guard bin for "
                 "~1-bin residuals, Fig. 14b) while SKIP=2 holds most of its 2x "
                 "capacity advantage over SKIP=4 — the paper's design point\n";
    return 0;
}
