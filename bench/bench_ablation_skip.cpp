// Ablation — the SKIP guard bins (§3.2.1), evaluated at FULL capacity.
//
// SKIP trades concurrency for jitter margin: SKIP=1 packs 512 devices at
// 1-bin spacing but hardware delay jitter (up to 3.5 us ~ 1.75 bins at
// 500 kHz) makes neighbours bleed into each other; SKIP=2 — the deployed
// point — carries 256 devices with a full guard bin; SKIP=4 is safer
// still but halves capacity again. The interesting quantity is the
// aggregate GOODPUT = capacity x delivery x 976 bps, which SKIP=2
// maximizes under realistic jitter.
//
// The five settings are independent simulations, so they run as one
// batch on the engine's Monte-Carlo runner and fill all cores.
#include <iostream>

#include "netscatter/engine/mc_runner.hpp"
#include "netscatter/sim/deployment.hpp"
#include "netscatter/sim/network_sim.hpp"
#include "netscatter/util/table.hpp"
#include "bench_report.hpp"

int main() {
    const bench::stopwatch clock;
    ns::util::text_table table(
        "Ablation: SKIP at full capacity (jitter up to 3.5 us, 2 rounds)",
        {"SKIP", "jitter", "devices", "delivery rate", "BER", "goodput [kbps]"});

    struct setting {
        std::uint32_t skip;
        bool jitter;
    };
    const std::vector<setting> settings = {
        {1, true}, {2, true}, {4, true}, {1, false}, {2, false}};

    std::vector<ns::engine::mc_job> jobs;
    for (const setting s : settings) {
        ns::engine::mc_job job;
        job.dep_params = ns::sim::deployment_params{};
        job.num_devices = 512 / s.skip;
        job.deployment_seed = 21;
        job.config.skip = s.skip;
        job.config.model_timing_jitter = s.jitter;
        job.config.rounds = 2;
        job.config.seed = 5;
        job.config.zero_padding = 4;
        jobs.push_back(job);
    }
    const ns::engine::mc_runner runner;
    const auto results = runner.run_batch(jobs).results;

    bench::bench_report report("ablation_skip");
    for (std::size_t i = 0; i < settings.size(); ++i) {
        const setting s = settings[i];
        const std::size_t devices = jobs[i].num_devices;
        const auto& result = results[i];
        const double goodput_kbps =
            result.delivery_rate() * static_cast<double>(devices) * 976.5625 / 1e3;
        table.add_row({std::to_string(s.skip), s.jitter ? "on" : "off",
                       std::to_string(devices),
                       ns::util::format_double(result.delivery_rate(), 3),
                       ns::util::format_double(result.ber(), 4),
                       ns::util::format_double(goodput_kbps, 1)});
        report.add_point({{"skip", static_cast<double>(s.skip)},
                          {"jitter", s.jitter ? 1.0 : 0.0},
                          {"num_devices", static_cast<double>(devices)},
                          {"delivery_rate", result.delivery_rate()},
                          {"ber", result.ber()},
                          {"goodput_kbps", goodput_kbps}});
    }
    table.print(std::cout);
    std::cout << "\nexpected: with jitter on, SKIP=1 collapses (no guard bin for "
                 "~1-bin residuals, Fig. 14b) while SKIP=2 holds most of its 2x "
                 "capacity advantage over SKIP=4 — the paper's design point\n";
    report.set_scalar("wall_clock_s", clock.seconds());
    report.write();
    return 0;
}
