// Fig. 17 — network PHY bit-rate vs number of concurrent backscatter
// devices, for four schemes: LoRa backscatter without and with (ideal)
// rate adaptation, NetScatter (ideal), and NetScatter as measured by the
// sample-level simulation over the office deployment.
//
// Paper shape: NetScatter scales linearly to ~250 kbps at 256 devices
// (976 bps per device); LoRa backscatter stays flat (~8.7 kbps without
// rate adaptation, tens of kbps with). Gains at 256 devices: 26.2x /
// 6.8x. Variance grows past 128 devices as SKIP drops to 2.
#include <iostream>

#include "netscatter/baseline/lora_link.hpp"
#include "netscatter/sim/timeline.hpp"
#include "netscatter/util/table.hpp"
#include "netsim_sweep.hpp"

int main() {
    const auto frame = ns::phy::phy_format();  // 5-byte payload (§4.4)
    const auto phy = ns::phy::deployed_params();

    ns::sim::sim_config base;
    base.frame = frame;
    const auto sweep = bench::run_sweep(/*rounds=*/3, /*seed=*/17, base);

    ns::util::text_table table(
        "Fig 17: network PHY rate [kbps] vs # devices",
        {"# devices", "LoRa-BS fixed", "LoRa-BS rate-adapt", "NetScatter (ideal)",
         "NetScatter (simulated)", "delivered/round"});

    for (const auto& point : sweep) {
        const auto lora = ns::baseline::fixed_rate_network(frame, point.num_devices);
        const auto adapted =
            ns::baseline::rate_adapted_network(frame, point.uplink_rssi_dbm);
        const auto ideal = ns::sim::netscatter_ideal_metrics(
            frame, phy, ns::sim::query_config::config1, point.num_devices);
        const auto measured = ns::sim::netscatter_metrics(
            frame, phy, ns::sim::query_config::config1,
            static_cast<std::size_t>(point.mean_delivered + 0.5), point.num_devices);

        table.add_row({std::to_string(point.num_devices),
                       ns::util::format_double(lora.phy_rate_bps / 1e3, 1),
                       ns::util::format_double(adapted.phy_rate_bps / 1e3, 1),
                       ns::util::format_double(ideal.phy_rate_bps / 1e3, 1),
                       ns::util::format_double(measured.phy_rate_bps / 1e3, 1),
                       ns::util::format_double(point.mean_delivered, 1)});
    }
    table.print(std::cout);

    const auto& last = sweep.back();
    const auto lora = ns::baseline::fixed_rate_network(frame, 256);
    const auto adapted = ns::baseline::rate_adapted_network(frame, last.uplink_rssi_dbm);
    const auto measured = ns::sim::netscatter_metrics(
        frame, phy, ns::sim::query_config::config1,
        static_cast<std::size_t>(last.mean_delivered + 0.5), 256);
    std::cout << "\nat 256 devices: gain over fixed LoRa-BS = "
              << ns::util::format_double(measured.phy_rate_bps / lora.phy_rate_bps, 1)
              << "x (paper: 26.2x), over rate-adapted = "
              << ns::util::format_double(measured.phy_rate_bps / adapted.phy_rate_bps, 1)
              << "x (paper: 6.8x)\n";
    return 0;
}
