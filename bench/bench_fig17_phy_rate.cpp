// Fig. 17 — network PHY bit-rate vs number of concurrent backscatter
// devices, for four schemes: LoRa backscatter without and with (ideal)
// rate adaptation, NetScatter (ideal), and NetScatter as measured by the
// sample-level simulation over the office deployment.
//
// Paper shape: NetScatter scales linearly to ~250 kbps at 256 devices
// (976 bps per device); LoRa backscatter stays flat (~8.7 kbps without
// rate adaptation, tens of kbps with). Gains at 256 devices: 26.2x /
// 6.8x. Variance grows past 128 devices as SKIP drops to 2.
#include <cstdlib>
#include <iostream>

#include "netscatter/baseline/lora_link.hpp"
#include "netscatter/engine/thread_pool.hpp"
#include "netscatter/sim/timeline.hpp"
#include "netscatter/util/table.hpp"
#include "bench_report.hpp"
#include "netsim_sweep.hpp"

namespace {

bool same_sweep(const std::vector<bench::sweep_point>& a,
                const std::vector<bench::sweep_point>& b) {
    if (a.size() != b.size()) return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i].num_devices != b[i].num_devices ||
            a[i].mean_delivered != b[i].mean_delivered ||
            a[i].delivery_rate != b[i].delivery_rate) {
            return false;
        }
    }
    return true;
}

}  // namespace

int main() {
    const auto frame = ns::phy::phy_format();  // 5-byte payload (§4.4)
    const auto phy = ns::phy::deployed_params();

    ns::sim::sim_config base;
    base.frame = frame;

    // Parallel sweep through the engine, then the serial reference (same
    // task decomposition on one thread). The two must be bit-identical;
    // the ratio of their wall clocks is the engine's speedup. Set
    // NS_BENCH_SKIP_SERIAL=1 to skip the (slow) reference on big runs.
    const bench::stopwatch parallel_clock;
    const auto sweep =
        bench::run_sweep(/*rounds=*/3, /*seed=*/17, base, bench::parallel_options());
    const double parallel_s = parallel_clock.seconds();

    double serial_s = 0.0;
    bool identical = true;
    const bool skip_serial = std::getenv("NS_BENCH_SKIP_SERIAL") != nullptr;
    if (!skip_serial) {
        const bench::stopwatch serial_clock;
        const auto serial_sweep =
            bench::run_sweep(/*rounds=*/3, /*seed=*/17, base, bench::serial_options());
        serial_s = serial_clock.seconds();
        identical = same_sweep(sweep, serial_sweep);
    }

    ns::util::text_table table(
        "Fig 17: network PHY rate [kbps] vs # devices",
        {"# devices", "LoRa-BS fixed", "LoRa-BS rate-adapt", "NetScatter (ideal)",
         "NetScatter (simulated)", "delivered/round"});

    bench::bench_report report("fig17_phy_rate");
    for (const auto& point : sweep) {
        const auto lora = ns::baseline::fixed_rate_network(frame, point.num_devices);
        const auto adapted =
            ns::baseline::rate_adapted_network(frame, point.uplink_rssi_dbm);
        const auto ideal = ns::sim::netscatter_ideal_metrics(
            frame, phy, ns::sim::query_config::config1, point.num_devices);
        const auto measured = ns::sim::netscatter_metrics(
            frame, phy, ns::sim::query_config::config1,
            static_cast<std::size_t>(point.mean_delivered + 0.5), point.num_devices);

        table.add_row({std::to_string(point.num_devices),
                       ns::util::format_double(lora.phy_rate_bps / 1e3, 1),
                       ns::util::format_double(adapted.phy_rate_bps / 1e3, 1),
                       ns::util::format_double(ideal.phy_rate_bps / 1e3, 1),
                       ns::util::format_double(measured.phy_rate_bps / 1e3, 1),
                       ns::util::format_double(point.mean_delivered, 1)});
        report.add_point({{"num_devices", static_cast<double>(point.num_devices)},
                          {"mean_delivered", point.mean_delivered},
                          {"delivery_rate", point.delivery_rate},
                          {"phy_rate_kbps", measured.phy_rate_bps / 1e3}});
    }
    table.print(std::cout);

    const auto& last = sweep.back();
    const auto lora = ns::baseline::fixed_rate_network(frame, 256);
    const auto adapted = ns::baseline::rate_adapted_network(frame, last.uplink_rssi_dbm);
    const auto measured = ns::sim::netscatter_metrics(
        frame, phy, ns::sim::query_config::config1,
        static_cast<std::size_t>(last.mean_delivered + 0.5), 256);
    std::cout << "\nat 256 devices: gain over fixed LoRa-BS = "
              << ns::util::format_double(measured.phy_rate_bps / lora.phy_rate_bps, 1)
              << "x (paper: 26.2x), over rate-adapted = "
              << ns::util::format_double(measured.phy_rate_bps / adapted.phy_rate_bps, 1)
              << "x (paper: 6.8x)\n";

    std::cout << "\nengine: " << ns::engine::thread_pool::default_thread_count()
              << " hardware threads, parallel sweep "
              << ns::util::format_double(parallel_s, 2) << " s";
    if (!skip_serial) {
        std::cout << ", serial reference " << ns::util::format_double(serial_s, 2)
                  << " s, speedup "
                  << ns::util::format_double(serial_s / parallel_s, 2)
                  << "x, bit-identical: " << (identical ? "yes" : "NO");
    }
    std::cout << "\n";

    report.set_scalar("wall_clock_s", parallel_s);
    report.set_scalar("hardware_threads",
                      static_cast<double>(ns::engine::thread_pool::default_thread_count()));
    if (!skip_serial) {
        report.set_scalar("serial_wall_clock_s", serial_s);
        report.set_scalar("speedup", serial_s / parallel_s);
        report.set_scalar("bit_identical", identical ? 1.0 : 0.0);
    }
    report.write();
    return identical ? 0 : 1;
}
