// Fig. 4 + §2.2 — why Choir cannot scale to backscatter.
//
// (a) CDF of per-packet FFT-bin variation (ΔFFTbin) for backscatter
//     devices (baseband <= 3 MHz) versus active LoRa radios (900 MHz
//     carrier), BW = 500 kHz, SF = 9. The paper's Fig. 4: radios spread
//     over 0..7 bins while backscatter stays under one-third of a bin.
// (b) The two analytic scaling limits of §2.2: the probability that N
//     devices have distinct tenth-bin fractional signatures, and the
//     probability that two devices collide in the same cyclic shift.
#include <cmath>
#include <iostream>
#include <vector>

#include "netscatter/baseline/choir.hpp"
#include "netscatter/channel/impairments.hpp"
#include "netscatter/phy/css_params.hpp"
#include "netscatter/phy/sensitivity.hpp"
#include "netscatter/util/rng.hpp"
#include "netscatter/util/stats.hpp"
#include "netscatter/util/table.hpp"

int main() {
    const ns::phy::css_params phy = ns::phy::deployed_params();
    ns::util::rng rng(42);

    // --- (a) ΔFFTbin distributions --------------------------------------
    // Each device has a static crystal offset; packet-to-packet drift
    // produces the observed FFT-bin variation relative to the device's
    // reference. Radios: 900 MHz carrier; backscatter: 3 MHz baseband.
    const ns::channel::crystal_model radio{.tolerance_ppm = 7.5,
                                           .operating_frequency_hz = 900e6,
                                           .drift_sigma_hz = 0.0};
    const ns::channel::crystal_model tag{.tolerance_ppm = 50.0,
                                         .operating_frequency_hz = 3e6,
                                         .drift_sigma_hz = 15.0};

    const int devices = 256, packets = 100;
    std::vector<double> radio_bins, tag_bins;
    for (int d = 0; d < devices; ++d) {
        const double radio_offset = radio.sample_static_offset_hz(rng);
        const double tag_offset = tag.sample_static_offset_hz(rng);
        for (int p = 0; p < packets; ++p) {
            radio_bins.push_back(
                std::abs(phy.bins_from_frequency_offset(radio_offset)));
            tag_bins.push_back(std::abs(phy.bins_from_frequency_offset(
                tag_offset + tag.sample_drift_hz(rng))));
        }
    }

    ns::util::text_table cdf("Fig 4: CDF of DeltaFFTbin (BW=500 kHz, SF=9)",
                             {"DeltaFFTbin", "backscatter devices", "LoRa radios"});
    for (double x : {0.1, 0.2, 0.33, 0.5, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0}) {
        cdf.add_row({ns::util::format_double(x, 2),
                     ns::util::format_double(ns::util::cdf_at(tag_bins, x), 3),
                     ns::util::format_double(ns::util::cdf_at(radio_bins, x), 3)});
    }
    cdf.print(std::cout);
    std::cout << "paper shape: backscatter CDF hits 1.0 by ~0.33 bins; radios "
                 "spread across 0..7 bins\n\n";

    // --- (b) §2.2 analytics ---------------------------------------------
    ns::util::text_table analytics(
        "SS2.2: Choir scaling limits (SF=9)",
        {"N devices", "P[distinct 0.1-bin fractions]", "P[shift collision] exact",
         "approx N(N-1)/2^(SF+1)"});
    for (std::size_t n : {2u, 5u, 10u, 15u, 20u}) {
        analytics.add_row(
            {std::to_string(n),
             ns::util::format_double(ns::baseline::choir_unique_fraction_probability(n), 4),
             ns::util::format_double(
                 ns::baseline::choir_symbol_collision_probability(n, 9), 4),
             ns::util::format_double(
                 ns::baseline::choir_symbol_collision_approximation(n, 9), 4)});
    }
    analytics.print(std::cout);
    std::cout << "paper anchors: P[distinct]=30% at N=5; collision ~9% at N=10, "
                 "~32% at N=20\n\n";

    // --- multi-SF alternative (§2.2): distinct chirp slopes --------------
    const auto slopes = ns::phy::analyze_concurrent_configs();
    std::cout << "multi-SF alternative: " << slopes.distinct_slope_classes
              << " distinct chirp slopes over the LoRa BW family x SF 6-12 "
                 "(paper: 19); only "
              << slopes.usable_classes
              << " classes meet -123 dBm sensitivity and >=1 kbps (paper: 8) — "
                 "far short of hundreds of concurrent devices\n\n";

    // --- sample-level confirmation: Choir with compressed signatures ----
    std::vector<ns::baseline::choir_device> compressed;
    for (std::uint32_t d = 0; d < 5; ++d) {
        compressed.push_back({.id = d,
                              .fractional_offset_bins = rng.uniform(-0.15, 0.15),
                              .snr_db = 10.0});
    }
    const auto result =
        ns::baseline::simulate_choir_round(phy, compressed, 100, 1.0, rng);
    std::cout << "sample-level: 5 backscatter-like devices (signatures within "
                 "+-0.15 bin), Choir decoder attributes "
              << ns::util::format_double(
                     100.0 * static_cast<double>(result.correct) /
                         static_cast<double>(result.transmitted), 1)
              << "% of symbols correctly (scaling collapses)\n";
    return 0;
}
