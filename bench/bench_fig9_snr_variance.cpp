// Fig. 9 — CDF of backscatter-device SNR variation in an office with
// people walking around, over 30 minutes. The paper observes per-device
// SNR variance confined to roughly +-5 dB — the motivation for the
// fine-grained power adaptation (§3.2.3).
//
// We run the Gauss-Markov fading process for 8 devices at one sample per
// second for 30 minutes and print each device's SNR-deviation CDF.
#include <iostream>
#include <vector>

#include "netscatter/channel/fading.hpp"
#include "netscatter/util/rng.hpp"
#include "netscatter/util/stats.hpp"
#include "netscatter/util/table.hpp"

int main() {
    const int devices = 8;
    const int samples = 30 * 60;  // 30 minutes at 1 Hz
    ns::util::rng rng(9);

    std::vector<std::vector<double>> traces(devices);
    for (int d = 0; d < devices; ++d) {
        // Uplink fading = 2x one-way fading (round trip), sigma ~1.5 dB
        // one-way -> ~3 dB uplink standard deviation.
        ns::channel::gauss_markov_fading fading(1.5, 0.95, rng.fork());
        for (int t = 0; t < samples; ++t) {
            traces[static_cast<std::size_t>(d)].push_back(2.0 * fading.next_db());
        }
    }

    ns::util::text_table cdf("Fig 9: CDF of SNR variation over 30 min (8 devices)",
                             {"SNR deviation [dB]", "dev1", "dev2", "dev3", "dev4",
                              "dev5", "dev6", "dev7", "dev8"});
    for (double x : {-5.0, -4.0, -3.0, -2.0, -1.0, 0.0, 1.0, 2.0, 3.0, 4.0, 5.0}) {
        std::vector<std::string> row{ns::util::format_double(x, 0)};
        for (int d = 0; d < devices; ++d) {
            row.push_back(ns::util::format_double(
                ns::util::cdf_at(traces[static_cast<std::size_t>(d)], x), 2));
        }
        cdf.add_row(row);
    }
    cdf.print(std::cout);

    ns::util::running_stats spread;
    for (const auto& trace : traces) {
        for (double v : trace) spread.add(v);
    }
    std::cout << "\noverall: mean " << ns::util::format_double(spread.mean(), 2)
              << " dB, std dev " << ns::util::format_double(spread.stddev(), 2)
              << " dB, range [" << ns::util::format_double(spread.min(), 1) << ", "
              << ns::util::format_double(spread.max(), 1)
              << "] dB\npaper shape: variations confined to roughly +-5 dB\n";
    return 0;
}
